"""Design-space exploration: Pareto filtering, campaign, spec isolation."""

import json

import pytest

from repro.arch import DEFAULT_SPEC
from repro.baselines import lowpass_taps_q15
from repro.core.errors import ConfigurationError
from repro.explore import (
    KERNELS,
    DesignPoint,
    ExplorationCampaign,
    KernelPipeline,
    ParetoReport,
    design_space,
    pareto_front,
    smoke_space,
)
from repro.explore.campaign import main as explore_main
from repro.app.signals import respiration_signal
from repro.kernels import KernelRunner
from repro.kernels.fir import fir_fx_reference, run_fir
from repro.kernels.rfft import RfftEngine, rfft_reference_int


def _point(name, cycles, energy):
    return DesignPoint(
        name=name, fingerprint=name, geometry=name,
        cycles_per_window=cycles, energy_uj_per_window=energy,
    )


class TestParetoFiltering:
    def test_dominance(self):
        a = _point("a", 100, 1.0)
        b = _point("b", 120, 1.2)   # worse on both
        c = _point("c", 100, 1.2)   # ties cycles, worse energy
        d = _point("d", 90, 1.5)    # faster but hungrier
        assert a.dominates(b)
        assert a.dominates(c)
        assert not a.dominates(d) and not d.dominates(a)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = _point("a", 100, 1.0)
        b = _point("b", 100, 1.0)
        assert not a.dominates(b) and not b.dominates(a)
        front, dominated = pareto_front([a, b])
        assert {p.name for p in front} == {"a", "b"}
        assert dominated == []

    def test_front_filters_dominated_points(self):
        points = [
            _point("fast", 80, 2.0),
            _point("balanced", 100, 1.0),
            _point("lean", 150, 0.5),
            _point("bad", 160, 2.5),      # dominated by everything
            _point("meh", 110, 1.1),      # dominated by balanced
        ]
        front, dominated = pareto_front(points)
        assert [p.name for p in front] == ["fast", "balanced", "lean"]
        assert {p.name for p in dominated} == {"bad", "meh"}

    def test_report_rendering(self):
        report = ParetoReport(
            points=[_point("a", 100, 1.0), _point("b", 120, 1.2)],
            meta={"kernels": ["rfft"], "windows": 1},
        )
        assert report.front_names == ["a"]
        assert report["b"].cycles_per_window == 120
        with pytest.raises(KeyError):
            report["missing"]
        data = json.loads(report.to_json())
        assert data["front"] == ["a"]
        by_name = {p["name"]: p for p in data["points"]}
        assert by_name["a"]["pareto_optimal"]
        assert not by_name["b"]["pareto_optimal"]
        table = report.table()
        assert "a" in table and "cyc/win" in table


class TestKernelPipeline:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="unknown exploration"):
            KernelPipeline("dct")

    def test_fir_pipeline_matches_golden(self):
        runner = KernelRunner()
        samples = respiration_signal(512)
        result = KernelPipeline("fir")(runner, samples)
        golden = fir_fx_reference(
            samples, lowpass_taps_q15(11, 0.08)
        )
        direct = run_fir(KernelRunner(), lowpass_taps_q15(11, 0.08), samples)
        assert direct.samples == golden
        assert result.checksum == KernelPipeline("fir")(
            KernelRunner(), samples
        ).checksum
        assert result.steps["fir"].cycles > 0
        assert result.steps["fir"].events


class TestDesignSpace:
    def test_grid_shape(self):
        space = design_space()
        assert len(space) >= 8
        names = [spec.name for spec in space]
        assert len(set(names)) == len(names)
        assert space[0] == DEFAULT_SPEC
        fingerprints = {spec.fingerprint for spec in space}
        assert len(fingerprints) == len(space)

    def test_smoke_subset(self):
        assert [s.name for s in smoke_space()] \
            == ["paper", "1col", "spm16K", "vwr64"]


class TestExplorationCampaign:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one spec"):
            ExplorationCampaign(specs=[])
        with pytest.raises(ConfigurationError, match="unknown exploration"):
            ExplorationCampaign(kernels=("dct",))
        with pytest.raises(ConfigurationError, match="unique names"):
            ExplorationCampaign(specs=[DEFAULT_SPEC, DEFAULT_SPEC])
        with pytest.raises(ConfigurationError, match="at least one window"):
            ExplorationCampaign(windows=0)

    def test_serial_mini_campaign(self):
        campaign = ExplorationCampaign(
            specs=[DEFAULT_SPEC, DEFAULT_SPEC.vary("1col", n_columns=1)],
            kernels=("fir",), windows=1, workers=None,
        )
        report = campaign.run()
        assert report.meta["complete"]
        assert {p.name for p in report.points} == {"paper", "1col"}
        for point in report.points:
            assert point.cycles_per_window > 0
            assert point.energy_uj_per_window > 0
            assert point.engine_counts.get("compiled", 0) > 0
            assert set(point.kernel_cycles) == {"fir"}
        assert report.front_names  # at least one non-dominated point

    def test_pooled_full_grid(self):
        """The acceptance sweep: >= 8 specs x 2 kernels over the pool."""
        campaign = ExplorationCampaign(windows=1, workers=2)
        assert len(campaign.specs) >= 8 and len(campaign.kernels) >= 2
        report = campaign.run()
        assert report.meta["complete"]
        assert len(report.points) == len(campaign.specs)
        front = report.front
        assert front
        for point in report.points:
            assert set(point.kernel_cycles) == set(KERNELS)
            # Every design point must run compiled end to end.
            assert point.engine_counts.get("compiled", 0) > 0
            assert "reference" not in point.engine_counts
        # The frontier is consistent with the dominance relation.
        for point in report.dominated:
            assert any(p.dominates(point) for p in front)
        for point in front:
            assert not any(p.dominates(point) for p in report.points)


class TestExploreCli:
    def test_smoke_writes_pareto_json(self, tmp_path, capsys):
        path = tmp_path / "pareto.json"
        assert explore_main(["--smoke", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data["points"]) == 4
        assert data["meta"]["complete"]
        assert data["front"]
        out = capsys.readouterr().out
        assert "Pareto frontier" in out or "design points" in out

    def test_rejects_unknown_spec_names(self):
        with pytest.raises(SystemExit):
            explore_main(["--specs", "nonsense"])


class TestCrossSpecCacheIsolation:
    """Two geometries interleaved in one process stay bit-exact.

    The engine's structural memos, conflict verdicts and superblock plans
    all key on the geometry; a cross-spec cache collision would surface
    here as corrupted outputs or drifting cycle counts.
    """

    def test_interleaved_geometries_no_cache_corruption(self):
        samples = respiration_signal(512)
        taps = lowpass_taps_q15(11, 0.08)
        golden_re, golden_im = rfft_reference_int(samples)
        golden_fir = fir_fx_reference(samples, taps)
        narrow = DEFAULT_SPEC.vary("narrow", vwr_words=64)

        def flow(runner):
            engine = RfftEngine(runner, 512)
            engine.prepare()
            out = engine.run(samples)
            runner.reset_sram()
            fir = run_fir(runner, taps, samples)
            runner.reset_sram()
            return out, fir

        # Baseline cycle counts from isolated single-spec processes.
        baseline = {}
        for spec in (DEFAULT_SPEC, narrow):
            out, fir = flow(KernelRunner(spec=spec))
            baseline[spec.fingerprint] = (
                out.run.total_cycles, fir.run.total_cycles
            )

        # Interleave the two geometries on fresh runners, twice over.
        runners = {
            spec.fingerprint: KernelRunner(spec=spec)
            for spec in (DEFAULT_SPEC, narrow)
        }
        for _ in range(2):
            for spec in (DEFAULT_SPEC, narrow):
                runner = runners[spec.fingerprint]
                out, fir = flow(runner)
                assert (out.re, out.im) == (golden_re, golden_im)
                assert fir.samples == golden_fir
                assert (
                    out.run.total_cycles, fir.run.total_cycles
                ) == baseline[spec.fingerprint]
                decisions = runner.soc.vwr2a.engine_decisions
                assert decisions.get("reference", 0) == 0
