"""Unit tests for the simulator's passive components."""

import pytest
from hypothesis import given, strategies as st

from repro.core.alu import alu_execute
from repro.core.errors import AddressError
from repro.core.events import Ev, EventCounters
from repro.core.shuffle import shuffle
from repro.core.spm import Scratchpad
from repro.core.srf import ScalarRegisterFile
from repro.core.vwr import VeryWideRegister
from repro.isa.fields import ShuffleMode
from repro.isa.rc import RCOp
from repro.utils.bits import bit_reverse, clog2

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestEvents:
    def test_add_get_diff(self):
        ev = EventCounters()
        ev.add("x", 3)
        snap = ev.snapshot()
        ev.add("x")
        ev.add("y", 2)
        assert ev.get("x") == 4
        assert ev.diff(snap) == {"x": 1, "y": 2}

    def test_merge(self):
        a, b = EventCounters(), EventCounters()
        a.add("x", 1)
        b.add("x", 2)
        a.merge(b)
        assert a.get("x") == 3


class TestAlu:
    @given(int32s, int32s)
    def test_results_stay_32_bit(self, a, b):
        for op in RCOp:
            if op is RCOp.NOP:
                continue
            r = alu_execute(op, a, b)
            assert -(2**31) <= r <= 2**31 - 1

    def test_basic_semantics(self):
        assert alu_execute(RCOp.SADD, 2**31 - 1, 1) == -(2**31)  # wraps
        assert alu_execute(RCOp.SSUB, 0, 1) == -1
        assert alu_execute(RCOp.SMUL, 3, -7) == -21
        assert alu_execute(RCOp.FXPMUL, 1 << 15, 12345) == 12345
        assert alu_execute(RCOp.SRA, -8, 1) == -4
        assert alu_execute(RCOp.SRL, -1, 28) == 15
        assert alu_execute(RCOp.SLL, 1, 31) == -(2**31)
        assert alu_execute(RCOp.LNOT, 0, 0) == -1
        assert alu_execute(RCOp.SMAX, -3, 5) == 5
        assert alu_execute(RCOp.SMIN, -3, 5) == -3
        assert alu_execute(RCOp.MOV, 42, 99) == 42

    @given(int32s, st.integers(0, 31))
    def test_sra_matches_python(self, a, sh):
        assert alu_execute(RCOp.SRA, a, sh) == a >> sh


class TestVwr:
    def test_word_and_wide_access(self):
        ev = EventCounters()
        v = VeryWideRegister("t", 8, ev)
        v.write_word(3, -5)
        assert v.read_word(3) == -5
        assert ev.get(Ev.VWR_WORD_WRITE) == 1
        v.write_wide(list(range(8)))
        assert v.read_wide() == list(range(8))
        assert ev.get(Ev.VWR_WIDE_WRITE) == 1

    def test_bounds(self):
        v = VeryWideRegister("t", 8, EventCounters())
        with pytest.raises(AddressError):
            v.read_word(8)
        with pytest.raises(AddressError):
            v.write_wide([0] * 7)


class TestSrf:
    def test_rw_and_bounds(self):
        s = ScalarRegisterFile(8, EventCounters())
        s.write(0, 123)
        assert s.read(0) == 123
        with pytest.raises(AddressError):
            s.read(8)


class TestSpm:
    def test_line_roundtrip(self):
        ev = EventCounters()
        spm = Scratchpad(4, 8, ev)
        spm.write_line(2, list(range(8)))
        assert spm.read_line(2) == list(range(8))
        assert spm.read_word(2 * 8 + 3) == 3
        assert ev.get(Ev.SPM_WIDE_READ) == 1

    def test_bounds(self):
        spm = Scratchpad(4, 8, EventCounters())
        with pytest.raises(AddressError):
            spm.read_line(4)
        with pytest.raises(AddressError):
            spm.write_word(32, 1)
        with pytest.raises(AddressError):
            spm.poke_words(30, [1, 2, 3])


class TestShuffle:
    WIDTH = 16

    def _ab(self):
        a = list(range(self.WIDTH))
        b = list(range(100, 100 + self.WIDTH))
        return a, b

    def test_interleave(self):
        a, b = self._ab()
        lo = shuffle(a, b, ShuffleMode.INTERLEAVE_LO)
        hi = shuffle(a, b, ShuffleMode.INTERLEAVE_HI)
        full = lo + hi
        assert full[0::2] == a and full[1::2] == b

    def test_prune_inverts_interleave(self):
        a, b = self._ab()
        lo = shuffle(a, b, ShuffleMode.INTERLEAVE_LO)
        hi = shuffle(a, b, ShuffleMode.INTERLEAVE_HI)
        evens = shuffle(lo, hi, ShuffleMode.ODD_PRUNE)
        odds = shuffle(lo, hi, ShuffleMode.EVEN_PRUNE)
        assert evens == a and odds == b

    def test_bitrev(self):
        a, b = self._ab()
        concat = a + b
        bits = clog2(2 * self.WIDTH)
        lo = shuffle(a, b, ShuffleMode.BITREV_LO)
        hi = shuffle(a, b, ShuffleMode.BITREV_HI)
        expected = [concat[bit_reverse(i, bits)]
                    for i in range(2 * self.WIDTH)]
        assert lo + hi == expected

    def test_cshift(self):
        a, b = self._ab()
        concat = a + b
        lo = shuffle(a, b, ShuffleMode.CSHIFT_LO, slice_words=4)
        hi = shuffle(a, b, ShuffleMode.CSHIFT_HI, slice_words=4)
        expected = [concat[(i - 4) % (2 * self.WIDTH)]
                    for i in range(2 * self.WIDTH)]
        assert lo + hi == expected

    @given(st.sampled_from(list(ShuffleMode)),
           st.lists(int32s, min_size=8, max_size=8),
           st.lists(int32s, min_size=8, max_size=8))
    def test_shuffle_is_permutation_of_inputs(self, mode, a, b):
        out = shuffle(a, b, mode, slice_words=2)
        assert len(out) == 8
        pool = a + b
        for value in out:
            assert value in pool

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            shuffle([1, 2], [1], ShuffleMode.EVEN_PRUNE)
