"""Fault-tolerant fleet serving (``repro.serve.net``).

The load-bearing property, extended one more transport out from
``tests/test_pool.py``: a :class:`FleetServer` sharding a stream over
remote :class:`FleetWorker` peers on loopback TCP produces a
:class:`StreamReport` **bit-identical** to the single-process
:class:`StreamScheduler` — under clean links, under injected network
chaos (dropped/delayed/duplicated/corrupted/truncated frames,
mid-stream disconnects), and across a server restart resumed from a
:class:`StreamCheckpoint`. Plus: the framing codec never crashes on
hostile bytes, :class:`PoolWorkerError` round-trips the wire losslessly
and remote failures read like local ones, and the degradation ladder
lands on the local pool when no workers ever register.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import signal
import socket
import threading
import time

import pytest

from repro.app import WINDOW, respiration_signal
from repro.core.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.serve import (
    PoolWorkerError,
    StreamCheckpoint,
    StreamScheduler,
    WindowStream,
)
from repro.serve.net import (
    MAX_FRAME,
    FleetServer,
    FleetWorker,
    FrameBuffer,
    FrameError,
    decode_body,
    encode_frame,
    free_port,
    run_worker,
)
from repro.serve.net.framing import corrupt_frame
from repro.serve.pool import _default_start_method
from test_pool import FlakyPipeline, assert_windows_bit_identical

N_WINDOWS = 4


@pytest.fixture(scope="module")
def trace():
    return respiration_signal(N_WINDOWS * WINDOW)


@pytest.fixture(scope="module")
def stream(trace):
    return WindowStream(trace, window=WINDOW)


@pytest.fixture(scope="module")
def single(stream):
    return StreamScheduler(config="cpu_vwr2a", energy_model=True).run(stream)


def run_fleet(stream, n_workers=2, checkpoint=None, pipeline=None,
              reconnect_timeout=15.0, **kwargs):
    """One fleet session with ``n_workers`` thread-hosted workers."""
    kwargs.setdefault("register_timeout", 60.0)
    kwargs.setdefault("local_fallback", False)
    server = FleetServer(
        config="cpu_vwr2a", energy_model=True, pipeline=pipeline,
        **kwargs,
    )
    host, port = server.bind()
    threads = []
    for i in range(n_workers):
        worker = FleetWorker(
            host, port, name=f"w{i}",
            heartbeat_interval=0.2, reconnect_timeout=reconnect_timeout,
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        threads.append(thread)
    try:
        return server.run(stream, checkpoint)
    finally:
        server.close()
        for thread in threads:
            thread.join(timeout=15.0)


# -- the framing codec -------------------------------------------------------


class TestFraming:
    def test_roundtrip_message_only(self):
        frame = encode_frame({"type": "hb", "name": "w0"})
        buf = FrameBuffer()
        buf.feed(frame)
        kind, msg, payload = buf.pop()
        assert kind == "frame"
        assert msg == {"type": "hb", "name": "w0"}
        assert payload is None
        assert buf.pop() is None

    def test_roundtrip_with_pickle_payload(self):
        body = {"tuple": (1, 2), "list": [3.5]}
        frame = encode_frame({"type": "result", "index": 7}, payload=body)
        buf = FrameBuffer()
        # Byte-at-a-time reassembly: the decoder is incremental.
        for i in range(len(frame)):
            buf.feed(frame[i:i + 1])
        kind, msg, payload = buf.pop()
        assert kind == "frame"
        assert msg["index"] == 7
        assert payload == body

    def test_two_frames_in_one_feed(self):
        data = encode_frame({"type": "a"}) + encode_frame({"type": "b"})
        buf = FrameBuffer()
        buf.feed(data)
        assert buf.pop()[1]["type"] == "a"
        assert buf.pop()[1]["type"] == "b"
        assert buf.pop() is None

    def test_corrupt_body_is_recoverable_bad(self):
        frame = corrupt_frame(
            encode_frame({"type": "task", "index": 3}),
            offset=4, xor_mask=0x20,
        )
        buf = FrameBuffer()
        buf.feed(frame)
        kind, err = buf.pop()
        assert kind == "bad"
        assert isinstance(err, FrameError) and not err.fatal
        # The stream stays in sync: a clean frame after decodes fine.
        buf.feed(encode_frame({"type": "hb"}))
        assert buf.pop()[0] == "frame"

    def test_bad_magic_is_fatal(self):
        buf = FrameBuffer()
        buf.feed(b"JUNKJUNKJUNKJUNK")
        with pytest.raises(FrameError) as excinfo:
            buf.pop()
        assert excinfo.value.fatal

    def test_oversize_frame_is_fatal(self):
        frame = bytearray(encode_frame({"type": "hb"}))
        frame[4:8] = (MAX_FRAME + 1).to_bytes(4, "big")
        buf = FrameBuffer()
        buf.feed(bytes(frame))
        with pytest.raises(FrameError) as excinfo:
            buf.pop()
        assert excinfo.value.fatal

    def test_fuzz_never_crashes_the_decoder(self):
        """Seeded chaos: mangled frames only ever yield ``bad`` verdicts
        or fatal :class:`FrameError` — never an unhandled exception, and
        never a silently wrong decode (the checksum gate)."""
        rng = random.Random(2022)
        clean = encode_frame(
            {"type": "result", "index": 1, "attempt": 0},
            payload=([1.0] * 64, {"hits": 3}),
        )
        for _ in range(300):
            blob = bytearray(clean)
            mode = rng.randrange(4)
            if mode == 0:      # flip a few bytes anywhere
                for _ in range(rng.randrange(1, 4)):
                    blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            elif mode == 1:    # truncate
                del blob[rng.randrange(1, len(blob)):]
            elif mode == 2:    # duplicate a slice in place
                cut = rng.randrange(1, len(blob))
                blob = blob[:cut] + blob[:cut]
            else:              # garbage prefix
                blob = bytearray(rng.randbytes(rng.randrange(1, 32))) + blob
            buf = FrameBuffer()
            try:
                buf.feed(bytes(blob))
                while True:
                    popped = buf.pop()
                    if popped is None:
                        break
                    if popped[0] == "frame":
                        # Whatever survives the CRC gate must decode.
                        assert popped[1]["type"] == "result"
            except FrameError as err:
                assert err.fatal  # desync is the only throwing path

    def test_free_port_is_bindable(self):
        port = free_port()
        sock = socket.socket()
        sock.bind(("127.0.0.1", port))
        sock.close()


# -- error transport ---------------------------------------------------------


class TestWireErrors:
    def test_pool_worker_error_pickles_losslessly(self):
        err = PoolWorkerError("w3", 17, "Traceback ...\nBoom")
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is PoolWorkerError
        assert clone.worker_id == "w3"
        assert clone.window_index == 17
        assert clone.details == "Traceback ...\nBoom"
        assert str(clone) == str(err)

    def test_remote_failure_reads_like_local(self, stream, tmp_path):
        marker = tmp_path / "armed"
        marker.touch()
        pipeline = FlakyPipeline(
            str(marker),
            tuple(respiration_signal(N_WINDOWS * WINDOW)[
                2 * WINDOW:3 * WINDOW]),
        )
        with pytest.raises(PoolWorkerError) as excinfo:
            run_fleet(stream, n_workers=2, pipeline=pipeline,
                      reconnect_timeout=1.0)
        assert excinfo.value.window_index == 2
        assert "injected mid-stream kill" in excinfo.value.details
        assert excinfo.value.worker_id.startswith("w")


# -- clean-link bit-identity -------------------------------------------------


class TestFleetParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_fleet_matches_single(self, stream, single, n_workers):
        report = run_fleet(stream, n_workers=n_workers)
        assert_windows_bit_identical(single, report)
        assert report.total_energy_uj == single.total_energy_uj
        assert report.n_failed == 0
        assert report.resilience == {}

    def test_namespaces_record_who_served_what(self, stream, tmp_path):
        checkpoint = StreamCheckpoint(tmp_path / "ns.ckpt", every=1)
        run_fleet(stream, n_workers=2, checkpoint=checkpoint)
        state = checkpoint.load()
        assert state.complete
        served = {
            name: ns.get("served", 0)
            for name, ns in state.namespaces.items()
        }
        assert set(served) <= {"w0", "w1"}
        assert sum(served.values()) == N_WINDOWS


# -- network chaos -----------------------------------------------------------


class TestNetworkChaos:
    def test_chaos_is_invisible_in_the_results(self, stream, single):
        """Frame drops, delays, duplicates, corruption and slow-loris
        dribbling at once; the merged report is still bit-identical and
        the recoveries show up in the counters. (Each fault keeps its
        own window so the expected counters stay deterministic —
        interleavings of e.g. disconnect+corrupt are exercised by the
        generated sweeps in ``FaultCampaign``.)"""
        plan = FaultPlan(specs=(
            FaultSpec(kind="net_drop", window=0, persist=1),
            FaultSpec(kind="net_delay", window=1, persist=1, delay_ms=120),
            FaultSpec(kind="net_dup", window=1, persist=1),
            FaultSpec(kind="net_corrupt", window=2, persist=1,
                      offset=32, xor_mask=0x08),
            FaultSpec(kind="net_slow", window=3, persist=1,
                      chunk_bytes=64, delay_ms=2),
        ))
        report = run_fleet(
            stream, n_workers=2, fault_plan=plan,
            max_retries=2, task_deadline=4.0, heartbeat_timeout=15.0,
        )
        assert_windows_bit_identical(single, report)
        assert report.n_failed == 0
        res = report.resilience
        assert res.get("retries", 0) >= 2          # drop + corrupt
        assert res.get("net_checksum_failures", 0) >= 1   # corrupt
        assert res.get("net_deadline_misses", 0) >= 1     # lost frames
        # The late duplicate of window 1 was deduplicated, not merged
        # twice: exactly one result per window survived.
        assert res.get("late_results", 0) >= 1
        assert report.n_windows == N_WINDOWS

    def test_disconnects_and_truncation_retire_and_recover(
            self, stream, single):
        """Mid-stream disconnects (task side) and truncated result
        frames (a worker dying mid-send) both cost a ladder rung and
        recover invisibly."""
        plan = FaultPlan(specs=(
            FaultSpec(kind="net_disconnect", window=1, persist=1),
            FaultSpec(kind="net_truncate", window=2, persist=1, keep=24),
        ))
        report = run_fleet(
            stream, n_workers=2, fault_plan=plan,
            max_retries=3, task_deadline=4.0, heartbeat_timeout=15.0,
        )
        assert_windows_bit_identical(single, report)
        assert report.n_failed == 0
        res = report.resilience
        assert res.get("net_disconnects", 0) >= 1
        assert res.get("retries", 0) >= 2
        assert res.get("net_reconnects", 0) >= 1

    def test_unrecoverable_drop_quarantines_not_crashes(
            self, stream, single):
        plan = FaultPlan(specs=(
            FaultSpec(kind="net_drop", window=1, persist=99),
        ))
        report = run_fleet(
            stream, n_workers=2, fault_plan=plan,
            max_retries=1, task_deadline=0.75, retry_backoff=0.05,
        )
        assert report.n_failed == 1
        (failed,) = report.failed_windows
        assert failed.index == 1
        assert "net_deadline" in failed.kinds
        assert report.resilience.get("quarantined") == 1
        # The served remainder is still bit-identical.
        assert_windows_bit_identical(
            _subset(single, {w.index for w in report.windows}), report
        )

    def test_net_faults_without_deadline_is_a_config_error(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="net_drop", window=0, persist=1),
        ))
        with pytest.raises(ConfigurationError, match="task_deadline"):
            FleetServer(fault_plan=plan)


def _subset(report, indices):
    from repro.serve import StreamReport

    out = StreamReport(
        config=report.config, engine=report.engine,
        window=report.window, hop=report.hop,
        double_buffered=report.double_buffered,
    )
    for window in report.windows:
        if window.index in indices:
            out.add_window(window)
    return out


# -- server restart + checkpoint resume --------------------------------------


def _serve_in_child(port, n_windows, path):
    """Child-process server target (killed by the restart test)."""
    trace = respiration_signal(n_windows * WINDOW)
    stream = WindowStream(trace, window=WINDOW)
    server = FleetServer(
        config="cpu_vwr2a", energy_model=True, port=port,
        register_timeout=60.0, local_fallback=False,
    )
    server.run(stream, StreamCheckpoint(path, every=1))


class TestServerRestart:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_stop_and_resume_is_bit_identical(
            self, stream, single, n_workers, tmp_path):
        """A server that stops mid-stream (the graceful half of a
        restart) resumes from its checkpoint to a bit-identical merge,
        with the worker reconnections on the books."""
        path = tmp_path / f"restart{n_workers}.ckpt"
        port = free_port()
        first = FleetServer(
            config="cpu_vwr2a", energy_model=True, port=port,
            register_timeout=60.0, local_fallback=False, stop_after=2,
        )
        first.bind()
        threads = []
        for i in range(n_workers):
            worker = FleetWorker(
                "127.0.0.1", port, name=f"w{i}",
                heartbeat_interval=0.2, reconnect_timeout=20.0,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            threads.append(thread)
        try:
            partial = first.run(
                stream, StreamCheckpoint(path, every=1)
            )
            # stop_after is an at-least bound: results already in
            # flight when the threshold trips are still accepted.
            assert 2 <= partial.n_windows < N_WINDOWS
            state = StreamCheckpoint(path).load()
            assert not state.complete

            second = FleetServer(
                config="cpu_vwr2a", energy_model=True, port=port,
                register_timeout=60.0, local_fallback=False,
            )
            resumed = second.run(
                stream, StreamCheckpoint(path, every=1)
            )
        finally:
            for thread in threads:
                thread.join(timeout=20.0)
        assert_windows_bit_identical(single, resumed)
        assert resumed.total_energy_uj == single.total_energy_uj
        assert resumed.resilience.get("net_reconnects", 0) >= 1
        assert StreamCheckpoint(path).load().complete

    def test_killed_server_resumes_from_checkpoint(
            self, stream, single, tmp_path):
        """The ungraceful half: SIGKILL the server process mid-stream;
        workers ride their reconnect loop into the replacement server
        and the merged report is still bit-identical."""
        path = str(tmp_path / "killed.ckpt")
        port = free_port()
        ctx = multiprocessing.get_context(_default_start_method())
        child = ctx.Process(
            target=_serve_in_child, args=(port, N_WINDOWS, path),
            daemon=True,
        )
        child.start()
        threads = []
        for i in range(2):
            worker = FleetWorker(
                "127.0.0.1", port, name=f"w{i}",
                heartbeat_interval=0.2, reconnect_timeout=30.0,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            threads.append(thread)
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                state = StreamCheckpoint(path).load() \
                    if os.path.exists(path) else None
                if state is not None and state.n_done >= 1:
                    break
                if child.exitcode is not None:
                    break
                time.sleep(0.02)
            if child.is_alive():
                os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10.0)

            server = FleetServer(
                config="cpu_vwr2a", energy_model=True, port=port,
                register_timeout=60.0, local_fallback=False,
            )
            resumed = server.run(stream, StreamCheckpoint(path, every=1))
        finally:
            for thread in threads:
                thread.join(timeout=20.0)
        assert_windows_bit_identical(single, resumed)
        assert StreamCheckpoint(path).load().complete


# -- the degradation ladder --------------------------------------------------


class TestDegradation:
    def test_no_workers_degrades_to_local_pool(self, stream, single):
        server = FleetServer(
            config="cpu_vwr2a", energy_model=True,
            register_timeout=0.4, local_fallback=True, local_workers=2,
        )
        report = server.run(stream)
        assert_windows_bit_identical(single, report)
        assert report.resilience.get("local_degradations") == 1

    def test_no_workers_without_fallback_is_an_error(self, stream):
        server = FleetServer(
            register_timeout=0.3, local_fallback=False,
        )
        with pytest.raises(ConfigurationError, match="no fleet workers"):
            server.run(stream)


# -- observability -----------------------------------------------------------


class TestFleetObservability:
    def test_chaos_run_emits_only_registered_metrics(
            self, stream, single):
        """The transport's bus families are all in the docs' registry,
        and the headline robustness counters show up live."""
        from repro.obs import REGISTRY, default_bus, recording

        plan = FaultPlan(specs=(
            FaultSpec(kind="net_drop", window=1, persist=1),
            FaultSpec(kind="net_corrupt", window=2, persist=1,
                      offset=32, xor_mask=0x08),
        ))
        with recording(default_bus()) as bus:
            report = run_fleet(
                stream, n_workers=2, fault_plan=plan,
                max_retries=2, task_deadline=4.0,
            )
        snap = bus.snapshot()
        assert_windows_bit_identical(single, report)
        emitted = {key[0] for key in snap.counters}
        emitted |= {key[0] for key in snap.gauges}
        emitted |= {key[0] for key in snap.histograms}
        unregistered = emitted - set(REGISTRY)
        assert not unregistered, \
            f"undocumented metrics: {sorted(unregistered)}"
        assert snap.counter("repro_windows_served_total") == N_WINDOWS
        assert snap.counter(
            "repro_net_retries_total", reason="deadline"
        ) >= 1
        assert snap.counter("repro_net_checksum_failures_total") >= 1
        assert sum(
            snap.counter_family("repro_net_frames_total").values()
        ) > 0


# -- worker exit reasons -----------------------------------------------------


class TestWorkerLifecycle:
    def test_unreachable_server_gives_up(self):
        port = free_port()  # nothing listens here
        reason = run_worker(
            "127.0.0.1", port, name="lost",
            reconnect_timeout=0.5, process_faults=False,
        )
        assert reason == "unreachable"
