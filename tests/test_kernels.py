"""Integration tests: every VWR2A kernel against its golden model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_PARAMS
from repro.baselines import delineate, lowpass_taps_q15
from repro.isa.rc import RCOp
from repro.kernels import (
    FftEngine,
    KernelRunner,
    RfftEngine,
    SplitFftEngine,
    cg_fft_reference_int,
    elementwise_kernel,
    fir_fx_reference,
    plan_fir,
    rfft_reference_int,
    run_delineation,
    run_fir,
    scalar_kernel,
    split_fft_reference_int,
)
from repro.kernels.features import run_accumulate, run_intervals

q15 = st.integers(-32768, 32767)


class TestVectorKernels:
    @pytest.mark.parametrize("op,fn", [
        (RCOp.SADD, lambda a, b: a + b),
        (RCOp.SSUB, lambda a, b: a - b),
        (RCOp.SMUL, lambda a, b: a * b),
        (RCOp.SMAX, max),
        (RCOp.SMIN, min),
    ])
    def test_elementwise_ops(self, op, fn):
        runner = KernelRunner()
        n = 256
        x = [(i * 37) % 100 - 50 for i in range(n)]
        y = [(i * 11) % 90 - 45 for i in range(n)]
        runner.stage_in(x, 0)
        runner.stage_in(y, n)
        cfg = elementwise_kernel(
            DEFAULT_PARAMS, op, n, a_line=0, b_line=2, c_line=4
        )
        runner.execute(cfg)
        out, _ = runner.stage_out(4 * 128, n)
        assert out == [fn(a, b) for a, b in zip(x, y)]

    def test_scalar_kernel(self):
        runner = KernelRunner()
        n = 128
        x = list(range(-64, 64))
        runner.stage_in(x, 0)
        cfg = scalar_kernel(
            DEFAULT_PARAMS, RCOp.SMUL, n, a_line=0, c_line=1, scalar=-3
        )
        runner.execute(cfg)
        out, _ = runner.stage_out(128, n)
        assert out == [v * -3 for v in x]

    @given(st.lists(q15, min_size=128, max_size=128))
    @settings(max_examples=10, deadline=None)
    def test_elementwise_add_property(self, x):
        runner = KernelRunner()
        runner.stage_in(x, 0)
        runner.stage_in(x, 128)
        cfg = elementwise_kernel(
            DEFAULT_PARAMS, RCOp.SADD, 128, a_line=0, b_line=1, c_line=2
        )
        runner.execute(cfg)
        out, _ = runner.stage_out(256, 128)
        assert out == [2 * v for v in x]


class TestFirKernel:
    def test_bit_exact_vs_golden(self):
        rng = np.random.default_rng(7)
        taps = lowpass_taps_q15(11, 0.1)
        x = (rng.uniform(-0.4, 0.4, 300) * 32768).astype(int).tolist()
        result = run_fir(KernelRunner(), taps, x)
        assert result.samples == fir_fx_reference(x, taps)

    def test_non_multiple_sizes(self):
        taps = lowpass_taps_q15(7, 0.2)
        x = list(range(-40, 37))   # 77 samples, 7 taps
        result = run_fir(KernelRunner(), taps, x)
        assert result.samples == fir_fx_reference(x, taps)

    def test_layout_math(self):
        layout = plan_fir(DEFAULT_PARAMS, 256, 11)
        assert layout.outputs_per_slice == 22
        assert layout.n_slices == 12
        assert layout.n_lines == 3
        order = layout.gather_in_order(DEFAULT_PARAMS)
        assert len(order) == layout.padded_input_words(DEFAULT_PARAMS)
        out_order = layout.gather_out_order(DEFAULT_PARAMS)
        assert len(set(out_order)) == 256  # distinct sparse positions

    def test_cycles_near_paper(self):
        taps = lowpass_taps_q15(11, 0.1)
        result = run_fir(KernelRunner(), taps, [100] * 256)
        assert 0.7 < result.run.total_cycles / 1849 < 1.5

    @given(st.lists(q15, min_size=30, max_size=80))
    @settings(max_examples=10, deadline=None)
    def test_fir_property_random(self, x):
        taps = lowpass_taps_q15(11, 0.15)
        result = run_fir(KernelRunner(), taps, x)
        assert result.samples == fir_fx_reference(x, taps)


class TestFftKernels:
    @pytest.mark.parametrize("n", [256, 512])
    def test_complex_bit_exact(self, n):
        rng = np.random.default_rng(n)
        re = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        im = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        out = FftEngine(KernelRunner(), n).run(re, im)
        gr, gi = cg_fft_reference_int(re, im)
        assert out.re == gr and out.im == gi

    def test_complex_1024_streaming_tables(self):
        rng = np.random.default_rng(9)
        re = (rng.uniform(-0.3, 0.3, 1024) * 32768).astype(int).tolist()
        engine = FftEngine(KernelRunner(), 1024)
        assert not engine.plan.resident_tables
        out = engine.run(re, [0] * 1024)
        gr, gi = cg_fft_reference_int(re, [0] * 1024)
        assert out.re == gr and out.im == gi

    def test_reference_matches_numpy(self):
        rng = np.random.default_rng(10)
        n = 512
        re = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        im = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        gr, gi = cg_fft_reference_int(re, im)
        ref = np.fft.fft((np.array(re) + 1j * np.array(im)) / 32768)
        got = (np.array(gr) + 1j * np.array(gi)) / 32768
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 1e-3

    def test_linearity_property(self):
        """FFT(a) + FFT(b) ~= FFT(a+b) (integer rounding aside)."""
        rng = np.random.default_rng(11)
        n = 256
        a = (rng.uniform(-0.2, 0.2, n) * 32768).astype(int).tolist()
        b = (rng.uniform(-0.2, 0.2, n) * 32768).astype(int).tolist()
        fa = cg_fft_reference_int(a, [0] * n)
        fb = cg_fft_reference_int(b, [0] * n)
        fab = cg_fft_reference_int(
            [x + y for x, y in zip(a, b)], [0] * n
        )
        diff = max(
            abs(fab[0][k] - fa[0][k] - fb[0][k]) for k in range(n)
        )
        assert diff <= 64  # per-stage truncation accumulation only

    def test_real_fft_bit_exact(self):
        rng = np.random.default_rng(12)
        x = (rng.uniform(-0.4, 0.4, 512) * 32768).astype(int).tolist()
        out = RfftEngine(KernelRunner(), 512).run(x)
        gr, gi = rfft_reference_int(x)
        assert out.re == gr and out.im == gi

    def test_real_fft_dc_and_nyquist(self):
        x = [1000] * 512
        out = RfftEngine(KernelRunner(), 512).run(x)
        ref = np.fft.rfft(np.array(x))
        assert out.re[0] == pytest.approx(ref[0].real, rel=0.01)
        assert abs(out.re[256]) <= 2
        assert out.im[256] == 0

    def test_split_2048_bit_exact(self):
        rng = np.random.default_rng(13)
        re = (rng.uniform(-0.3, 0.3, 2048) * 32768).astype(int).tolist()
        im = (rng.uniform(-0.3, 0.3, 2048) * 32768).astype(int).tolist()
        out = SplitFftEngine(KernelRunner()).run(re, im)
        gr, gi = split_fft_reference_int(re, im)
        assert out.re == gr and out.im == gi

    def test_prepare_is_one_time(self):
        runner = KernelRunner()
        engine = FftEngine(runner, 256)
        first = engine.prepare()
        assert engine.prepare() == first
        assert first > 0  # resident tables are DMA'd


class TestDelineationKernel:
    def _resp(self, n=512):
        t = np.arange(n)
        return (8000 * np.sin(2 * np.pi * t / 75)
                + 800 * np.sin(2 * np.pi * t / 11)).astype(int).tolist()

    def test_matches_reference_exactly(self):
        sig = self._resp()
        ref = delineate(sig, 2500)
        out = run_delineation(KernelRunner(), sig, 2500)
        assert out.maxima == ref.maxima
        assert out.minima == ref.minima

    @given(st.integers(500, 6000), st.integers(40, 120))
    @settings(max_examples=8, deadline=None)
    def test_matches_reference_across_thresholds(self, thr, period):
        t = np.arange(400)
        sig = (8000 * np.sin(2 * np.pi * t / period)).astype(int).tolist()
        ref = delineate(sig, thr)
        out = run_delineation(KernelRunner(), sig, thr)
        assert out.maxima == ref.maxima
        assert out.minima == ref.minima

    def test_ilp_advantage(self):
        sig = self._resp()
        ref = delineate(sig, 2500)
        out = run_delineation(KernelRunner(), sig, 2500)
        assert out.run.compute_cycles < ref.cycles / 5


class TestScalarKernels:
    def test_accumulate_sum_and_squares(self):
        runner = KernelRunner()
        data = [3, -4, 10, 7]
        runner.stage_in(data, 0)
        total = run_accumulate(runner, 0, 4, 100)
        assert total.value == 16
        sq = run_accumulate(runner, 0, 4, 100, squares=True)
        assert sq.value == 9 + 16 + 100 + 49

    def test_accumulate_dot_product(self):
        runner = KernelRunner()
        runner.stage_in([1, 2, 3], 0)
        runner.stage_in([10, -20, 30], 8)
        dot = run_accumulate(runner, 0, 3, 100, b_word=8)
        assert dot.value == 10 - 40 + 90

    def test_intervals_kernel(self):
        runner = KernelRunner()
        runner.stage_in([30, 70, 110], 0)    # maxima
        runner.stage_in([10, 50, 90], 8)     # minima
        run_intervals(
            runner,
            insp_spec=(0, 8, 16, 3),
            exp_spec=(8 + 1, 0, 19, 2),
        )
        spm = runner.soc.vwr2a.spm
        assert spm.peek_words(16, 3) == [20, 20, 20]
        assert spm.peek_words(19, 2) == [20, 20]

    def test_empty_accumulate(self):
        runner = KernelRunner()
        result = run_accumulate(runner, 0, 0, 100)
        assert result.value == 0
