"""The batched window-stream serving subsystem (``repro.serve``).

The load-bearing property: serving a long trace through the stream
scheduler — store-once kernel caching, SRAM recycling, double-buffered
staging — is **bit-identical** per window (cycles, events, features,
labels) to the historical sequential ``run_application`` loop, including
streams whose kernels trigger the reference-engine fallback mid-stream.
On top of that: window slicing semantics, SRAM staging regions, sweep
amortization, and the report aggregates.
"""

from __future__ import annotations

import pytest

from repro.app import (
    WINDOW,
    AppParams,
    respiration_signal,
    run_application,
)
from repro.asm.builder import ProgramBuilder
from repro.core.errors import ConfigurationError
from repro.isa.fields import DST_VWR_B, VWR_A, Vwr, imm
from repro.isa.lcu import addi, blt, seti
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels import KernelRunner, elementwise_kernel
from repro.serve import (
    ParameterSweep,
    StreamScheduler,
    SweepCase,
    WindowStream,
    serve_trace,
)

N_STREAM_WINDOWS = 3


@pytest.fixture(scope="module")
def trace():
    return respiration_signal(N_STREAM_WINDOWS * WINDOW)


@pytest.fixture(scope="module")
def sequential(trace):
    """The historical flow: one runner, a plain run_application loop."""
    runner = KernelRunner()
    windows = []
    for i in range(N_STREAM_WINDOWS):
        samples = trace[i * WINDOW:(i + 1) * WINDOW]
        before = runner.soc.events.snapshot()
        app = run_application(samples, "cpu_vwr2a", runner)
        windows.append({
            "app": app,
            "events": runner.soc.events.diff(before),
        })
    return windows


@pytest.fixture(scope="module")
def streamed(trace):
    return serve_trace(trace, "cpu_vwr2a")


class TestWindowStream:
    def test_back_to_back_slicing(self):
        stream = WindowStream(list(range(10)), window=4)
        assert len(stream) == 2
        windows = list(stream)
        assert [w.samples for w in windows] == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert [(w.index, w.start) for w in windows] == [(0, 0), (1, 4)]

    def test_overlapping_hop(self):
        stream = WindowStream(list(range(8)), window=4, hop=2)
        assert [w.start for w in stream] == [0, 2, 4]
        assert stream[1].samples == (2, 3, 4, 5)

    def test_tail_pad_serves_every_sample(self):
        stream = WindowStream(list(range(6)), window=4, tail="pad")
        windows = list(stream)
        assert [w.samples for w in windows] == \
            [(0, 1, 2, 3), (4, 5, 0, 0)]

    def test_short_trace_drops_or_pads(self):
        assert len(WindowStream([1, 2], window=4)) == 0
        padded = WindowStream([1, 2], window=4, tail="pad")
        assert [w.samples for w in padded] == [(1, 2, 0, 0)]
        assert len(WindowStream([], window=4, tail="pad")) == 0

    def test_is_reiterable_and_indexable(self):
        stream = WindowStream(list(range(12)), window=4)
        assert list(stream) == list(stream)
        assert stream[-1].start == 8
        with pytest.raises(IndexError):
            stream[3]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            WindowStream([1], window=0)
        with pytest.raises(ConfigurationError):
            WindowStream([1], window=4, hop=0)
        with pytest.raises(ConfigurationError):
            WindowStream([1], window=4, tail="wrap")

    def test_empty_trace_yields_no_windows(self):
        for tail in ("drop", "pad"):
            stream = WindowStream([], window=4, tail=tail)
            assert len(stream) == 0
            assert list(stream) == []
            with pytest.raises(IndexError):
                stream[0]

    def test_window_longer_than_trace(self):
        # "drop" ends before the first window; "pad" serves one padded.
        assert list(WindowStream([7, 8, 9], window=8)) == []
        padded = WindowStream([7, 8, 9], window=8, tail="pad")
        assert [w.samples for w in padded] == [(7, 8, 9, 0, 0, 0, 0, 0)]
        assert padded[0].start == 0

    def test_overlap_of_a_full_window_or_more_raises(self):
        # overlap = window - hop; overlap >= window means hop <= 0,
        # i.e. a stream that never advances — rejected outright.
        for overlap in (4, 5, 9):
            with pytest.raises(ConfigurationError, match="hop"):
                WindowStream(list(range(16)), window=4, hop=4 - overlap)

    def test_reiteration_after_partial_consumption(self):
        stream = WindowStream(list(range(16)), window=4)
        first = iter(stream)
        consumed = [next(first), next(first)]
        assert [w.index for w in consumed] == [0, 1]
        # A fresh iteration restarts from window 0, unaffected by the
        # half-consumed iterator (and that iterator keeps its cursor).
        assert [w.index for w in stream] == [0, 1, 2, 3]
        assert next(first).index == 2
        assert [w.samples for w in stream] == [w.samples for w in stream]


class TestStreamBitIdentity:
    """Streamed serving == the sequential run_application loop, exactly."""

    def test_cycles_and_steps_match(self, sequential, streamed):
        assert streamed.n_windows == N_STREAM_WINDOWS
        for seq, win in zip(sequential, streamed.windows):
            assert win.cycles == seq["app"].total_cycles
            assert win.app.total_cycles == seq["app"].total_cycles
            for name, step in seq["app"].steps.items():
                assert win.app.steps[name].cycles == step.cycles
                assert win.app.steps[name].cpu_active == step.cpu_active
                assert win.app.steps[name].cpu_sleep == step.cpu_sleep

    def test_events_match(self, sequential, streamed):
        for seq, win in zip(sequential, streamed.windows):
            assert win.events == seq["events"]

    def test_features_and_labels_match(self, sequential, streamed):
        for seq, win in zip(sequential, streamed.windows):
            assert win.app.features == seq["app"].features
            assert win.app.label == seq["app"].label
        assert streamed.labels == [s["app"].label for s in sequential]

    def test_every_launch_stayed_compiled(self, streamed):
        # All seed application kernels are proven conflict-free.
        assert set(streamed.engine_counts) == {"compiled"}
        assert streamed.fallbacks == ()
        for win in streamed.windows:
            assert win.launches
            assert all(r.engine == "compiled" for r in win.launches)

    def test_store_cache_amortizes_after_first_window(self, streamed):
        stats = streamed.store_stats
        assert stats["dedup_hits"] > 0
        # Warm windows re-store structurally identical kernels: every
        # encode miss belongs to the cold first window.
        assert stats["encode_misses"] <= stats["stores"] / N_STREAM_WINDOWS

    def test_double_buffer_overlap_estimate(self, streamed):
        assert streamed.double_buffered
        assert streamed.overlap_saved_cycles > 0
        assert streamed.pipelined_total_cycles \
            == streamed.total_cycles - streamed.overlap_saved_cycles
        for win in streamed.windows:
            assert win.staging_in_cycles > 0
            assert win.staging_out_cycles > 0

    def test_aggregates_are_sums(self, streamed):
        assert streamed.total_cycles == \
            sum(w.cycles for w in streamed.windows)
        total = streamed.total_events
        for name in ("column.cycle", "dma.beat", "sram.read"):
            assert total[name] == \
                sum(w.events.get(name, 0) for w in streamed.windows)
        assert streamed.total_energy_uj > 0
        assert streamed.windows_per_second > 0
        assert "windows" in streamed.summary()

    def test_energy_skipped_when_unmodeled(self, trace):
        report = serve_trace(
            trace[:WINDOW], "cpu_vwr2a", energy_model=None
        )
        assert report.windows[0].energy_uj is None
        assert report.total_energy_uj is None
        assert report.windows[0].kernel_energy_pj is None
        assert report.energy_by_kernel == {}

    def test_per_kernel_energy_attribution(self, streamed):
        # Histogram-native attribution: every compiled launch folds its
        # static block deltas; the per-window map must equal folding the
        # launches directly, and the stream aggregate must sum windows.
        from repro.energy import default_model

        model = default_model()
        for win in streamed.windows:
            assert win.kernel_energy_pj
            expected = {}
            for result in win.launches:
                folded = model.fold_histogram(
                    (delta, count)
                    for _, _, count, delta in result.block_histogram
                ).total_pj
                expected[result.name] = \
                    expected.get(result.name, 0.0) + folded
            assert win.kernel_energy_pj == pytest.approx(expected)
        aggregate = streamed.energy_by_kernel
        assert set(aggregate) == {
            name for w in streamed.windows for name in w.kernel_energy_pj
        }
        for name, pj in aggregate.items():
            assert pj == pytest.approx(sum(
                w.kernel_energy_pj.get(name, 0.0)
                for w in streamed.windows
            ))
        # Attribution covers datapath events only — it must stay below
        # the full window energy model (which adds leakage, DMA, CPU).
        total_uj = sum(aggregate.values()) * 1e-6
        assert 0 < total_uj < streamed.total_energy_uj

    def test_energy_follows_the_pipeline_config(self, trace):
        # A pipeline declaring its configuration wins over the scheduler
        # default, so a cpu-only window is never charged VWR2A leakage.
        from repro.app import window_pipeline

        stream = WindowStream(trace[:WINDOW], window=WINDOW)
        via_pipeline = StreamScheduler(
            pipeline=window_pipeline("cpu"), energy_model=True,
        ).run(stream)
        assert via_pipeline.config == "cpu"
        direct = StreamScheduler(config="cpu", energy_model=True) \
            .run(stream)
        assert via_pipeline.windows[0].energy_uj \
            == pytest.approx(direct.windows[0].energy_uj)


def _conflicting_kernel() -> KernelConfig:
    """Column 0 writes SPM line 2 that column 1 reads mid-kernel."""
    b0 = ProgramBuilder(n_rcs=4)
    b0.srf(0, 0)
    b0.srf(1, 2)
    b0.emit(lsu=ld_vwr(Vwr.A, 0))
    b0.emit(rcs=[rc(RCOp.SADD, DST_VWR_B, VWR_A, imm(1))] * 4)
    b0.emit(lsu=st_vwr(Vwr.B, 1))
    b0.exit()
    b1 = ProgramBuilder(n_rcs=4)
    b1.srf(0, 2)
    b1.srf(1, 3)
    b1.emit(lcu=seti(0, 0))
    b1.label("wait")
    b1.emit(lcu=addi(0, 1))
    b1.emit(lcu=blt(0, 20, "wait"))
    b1.emit(lsu=ld_vwr(Vwr.A, 0))
    b1.emit(lsu=st_vwr(Vwr.A, 1))
    b1.exit()
    return KernelConfig(
        name="serve_prodcons", columns={0: b0.build(), 1: b1.build()}
    )


class _MixedEnginePipeline:
    """Custom served pipeline: every odd window launches a kernel whose
    columns communicate through the SPM — the auto engine must fall back
    to the reference interpreter for exactly those windows."""

    def __init__(self):
        self.calls = 0

    def __call__(self, runner, samples):
        index = self.calls
        self.calls += 1
        runner.stage_in(samples[:128], 0)
        if index % 2:
            config = _conflicting_kernel()
        else:
            config = elementwise_kernel(
                runner.soc.params, RCOp.SADD, 128,
                a_line=0, b_line=1, c_line=4, name="serve_vadd",
            )
        result = runner.execute(config)
        out, _ = runner.stage_out(4 * 128, 32)
        return {"head": out[:4], "kernel": result.name}


class TestFallbackMidStream:
    def test_auto_engine_mixes_mid_stream(self, trace):
        scheduler = StreamScheduler(
            pipeline=_MixedEnginePipeline(), config="custom",
        )
        report = scheduler.run(WindowStream(trace, window=WINDOW))
        assert report.n_windows == N_STREAM_WINDOWS
        counts = report.engine_counts
        assert counts["reference"] == N_STREAM_WINDOWS // 2
        assert counts["compiled"] == N_STREAM_WINDOWS - counts["reference"]
        for win in report.windows:
            engines = {r.engine for r in win.launches}
            assert engines == \
                ({"reference"} if win.index % 2 else {"compiled"})
        # Fallbacks name the window, the kernel and the conflict.
        assert report.fallbacks
        window_index, kernel, reason = report.fallbacks[0]
        assert window_index == 1
        assert kernel == "serve_prodcons"
        assert "column 0" in reason and "column 1" in reason
        # The engine's own lifetime tally agrees with the launch log.
        assert scheduler.runner.soc.vwr2a.engine_decisions == counts
        # Custom pipelines carry no application steps: no label/energy.
        assert report.labels == [None] * N_STREAM_WINDOWS

    def test_mixed_stream_is_bit_identical_to_manual_loop(self, trace):
        manual_runner = KernelRunner()
        manual_pipeline = _MixedEnginePipeline()
        manual = []
        for i in range(N_STREAM_WINDOWS):
            manual_runner.reset_sram()
            before = manual_runner.soc.events.snapshot()
            cpu = manual_runner.soc.cpu
            cycles0 = cpu.active_cycles + cpu.sleep_cycles
            out = manual_pipeline(
                manual_runner, tuple(trace[i * WINDOW:(i + 1) * WINDOW])
            )
            manual.append({
                "out": out,
                "cycles": cpu.active_cycles + cpu.sleep_cycles - cycles0,
                "events": manual_runner.soc.events.diff(before),
            })

        report = StreamScheduler(
            pipeline=_MixedEnginePipeline(), config="custom",
        ).run(WindowStream(trace, window=WINDOW))
        for ref, win in zip(manual, report.windows):
            assert win.app == ref["out"]
            assert win.cycles == ref["cycles"]
            assert win.events == ref["events"]


class TestStagingRegions:
    def test_region_constrains_allocator(self):
        runner = KernelRunner()
        runner.set_sram_region(1000, 64)
        assert runner.sram_alloc(32) == 1000
        assert runner.sram_alloc(32) == 1032
        with pytest.raises(ConfigurationError, match="SRAM overflow"):
            runner.sram_alloc(1)
        runner.reset_sram()  # rewinds to the region base, not word 0
        assert runner.sram_alloc(8) == 1000

    def test_region_validation(self):
        runner = KernelRunner()
        n_words = runner.soc.sram.n_words
        with pytest.raises(ConfigurationError):
            runner.set_sram_region(0, 0)
        with pytest.raises(ConfigurationError):
            runner.set_sram_region(-4, 16)
        with pytest.raises(ConfigurationError):
            runner.set_sram_region(n_words - 8, 16)

    def test_scheduler_alternates_halves_and_restores(self, trace):
        bases = []

        def spy(runner, samples):
            bases.append(runner._sram_base)
            return run_application(
                samples, "cpu_vwr2a", runner, reset_sram=False
            )

        runner = KernelRunner()
        half = runner.soc.sram.n_words // 2
        StreamScheduler(pipeline=spy, config="cpu_vwr2a", runner=runner) \
            .run(WindowStream(trace, window=WINDOW))
        assert bases == [0, half, 0]
        # The runner leaves the stream with its full staging area back.
        assert runner._sram_base == 0
        assert runner._sram_limit == runner.soc.sram.n_words

    def test_nested_run_application_lands_in_outer_launch_log(self, trace):
        # A pipeline delegating to run_application (itself a stream
        # client) must still surface its launches on the outer report.
        def nested(runner, samples):
            return run_application(
                samples, "cpu_vwr2a", runner, reset_sram=False
            )

        report = StreamScheduler(
            pipeline=nested, config="cpu_vwr2a",
        ).run(WindowStream(trace[:WINDOW], window=WINDOW))
        assert report.windows[0].launches
        assert report.windows[0].app.label in (-1, 1)


class TestRunApplicationThinClient:
    """run_application kept its contract while becoming a stream client."""

    def test_reset_sram_default_rewinds(self, trace):
        runner = KernelRunner()
        run_application(trace[:WINDOW], "cpu_vwr2a", runner)
        watermark = runner._sram_next
        run_application(trace[:WINDOW], "cpu_vwr2a", runner)
        assert runner._sram_next == watermark

    def test_reset_sram_false_preserves_allocations(self, trace):
        runner = KernelRunner()
        runner.sram_alloc(100)
        run_application(
            trace[:WINDOW], "cpu_vwr2a", runner, reset_sram=False
        )
        assert runner._sram_next > 100

    def test_params_override_changes_the_pipeline(self, trace):
        window = trace[:WINDOW]
        default = run_application(window, "cpu", KernelRunner())
        short = run_application(
            window, "cpu", KernelRunner(),
            params=AppParams(fir_taps=7),
        )
        assert short.steps["preprocessing"].cycles \
            < default.steps["preprocessing"].cycles
        assert default.features != short.features

    def test_params_default_is_the_paper_pipeline(self, trace):
        window = trace[:WINDOW]
        assert run_application(window, "cpu", KernelRunner()).features \
            == run_application(
                window, "cpu", KernelRunner(), params=AppParams()
            ).features


class TestParameterSweep:
    @pytest.fixture(scope="class")
    def sweep_report(self, trace):
        sweep = ParameterSweep(
            cases=[
                SweepCase(name="paper", config="cpu_vwr2a"),
                SweepCase(
                    name="short_fir", config="cpu_vwr2a",
                    params=AppParams(fir_taps=7),
                ),
                "cpu",
            ],
        )
        two_windows = trace[:2 * WINDOW]
        return sweep.run(two_windows)

    def test_every_case_served(self, sweep_report):
        assert sweep_report.cases == ["paper", "short_fir", "cpu"]
        for _, report in sweep_report:
            assert report.n_windows == 2
            assert report.total_energy_uj > 0

    def test_cases_differ_where_they_should(self, sweep_report):
        paper = sweep_report["paper"]
        short = sweep_report["short_fir"]
        cpu = sweep_report["cpu"]
        assert short.total_cycles != paper.total_cycles
        assert cpu.total_cycles > 3 * paper.total_cycles
        assert sweep_report.best() in ("paper", "short_fir")

    def test_shared_runner_amortizes_across_sweeps(self, trace):
        runner = KernelRunner()
        cases = [SweepCase(name="only", config="cpu_vwr2a")]
        one_window = trace[:WINDOW]
        ParameterSweep(cases=cases, runner=runner).run(one_window)
        second = ParameterSweep(cases=cases, runner=runner) \
            .run(one_window)
        stats = second["only"].store_stats
        # Every store of the second pass dedupes against the first.
        assert stats["encode_misses"] == 0
        assert stats["dedup_hits"] > 0

    def test_table_renders_all_cases(self, sweep_report):
        table = sweep_report.table()
        for name in ("paper", "short_fir", "cpu"):
            assert name in table

    def test_rejects_degenerate_sweeps(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep(cases=[])
        with pytest.raises(ConfigurationError):
            ParameterSweep(cases=["cpu", "cpu"])
