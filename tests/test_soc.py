"""SoC substrate tests: bus, SRAM, CPU accounting, FFT accelerator, DMA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_SOC_PARAMS
from repro.core.errors import AddressError, ConfigurationError
from repro.core.events import Ev, EventCounters
from repro.soc import (
    AhbBus,
    BankedSram,
    BiosignalSoC,
    CortexM4Model,
    Domain,
    FftAccelerator,
    InterruptController,
    PowerManager,
)


class TestBus:
    def test_burst_cost(self):
        bus = AhbBus()
        # 8-beat bursts, 4-cycle setup: 16 words = 2 bursts.
        assert bus.burst_cycles(16) == 2 * 4 + 16
        assert bus.burst_cycles(1) == 4 + 1
        assert bus.burst_cycles(0) == 0

    @given(st.integers(1, 10000))
    def test_cost_monotone_and_superlinear_floor(self, n):
        bus = AhbBus()
        assert bus.burst_cycles(n) >= n + 4


class TestSram:
    def test_rw_and_banks(self):
        sram = BankedSram()
        sram.write_word(0, 42)
        assert sram.read_word(0) == 42
        assert sram.bank_of(0) == 0
        last = sram.n_words - 1
        assert sram.bank_of(last) == DEFAULT_SOC_PARAMS.sram_banks - 1

    def test_power_gating_blocks_access(self):
        sram = BankedSram()
        sram.set_bank_power(0, False)
        with pytest.raises(AddressError, match="power-gated"):
            sram.read_word(0)
        sram.set_bank_power(0, True)
        assert sram.read_word(0) == 0

    def test_bounds(self):
        sram = BankedSram()
        with pytest.raises(AddressError):
            sram.read_word(sram.n_words)


class TestCpu:
    def test_charge_and_sleep(self):
        cpu = CortexM4Model()
        cpu.charge(100)
        cpu.sleep(50)
        assert cpu.active_cycles == 100
        assert cpu.sleep_cycles == 50
        with pytest.raises(ValueError):
            cpu.charge(-1)


class TestPowerDomains:
    def test_gating_and_accounting(self):
        pm = PowerManager()
        assert pm.is_powered(Domain.CPU)
        assert not pm.is_powered(Domain.ACCELERATORS)
        pm.advance(100)
        assert pm.on_cycles(Domain.CPU) == 100
        assert pm.on_cycles(Domain.ACCELERATORS) == 0
        pm.power_on(Domain.ACCELERATORS)
        pm.advance(10)
        assert pm.on_cycles(Domain.ACCELERATORS) == 10
        with pytest.raises(ConfigurationError):
            pm.power_off(Domain.ACCELERATORS) or pm.require(
                Domain.ACCELERATORS
            )


class TestIrq:
    def test_lines(self):
        irq = InterruptController()
        irq.raise_line("vwr2a")
        assert irq.pending("vwr2a") and irq.any_pending()
        irq.acknowledge("vwr2a")
        assert not irq.any_pending()
        with pytest.raises(ConfigurationError):
            irq.raise_line("nope")


class TestFftAccelerator:
    def test_complex_accuracy(self):
        rng = np.random.default_rng(0)
        n = 1024
        re = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        im = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        result = FftAccelerator().complex_fft(re, im)
        ref = np.fft.fft((np.array(re) + 1j * np.array(im)) / 32768)
        got = np.array(result.spectrum())
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 5e-3

    def test_real_accuracy(self):
        rng = np.random.default_rng(1)
        x = (rng.uniform(-0.5, 0.5, 2048) * 32768).astype(int).tolist()
        result = FftAccelerator().real_fft(x)
        ref = np.fft.rfft(np.array(x) / 32768)
        got = np.array(result.spectrum())
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 5e-3

    def test_cycles_match_table2(self):
        accel = FftAccelerator()
        paper = {512: 7099, 1024: 13629, 2048: 31299}
        for n, cycles in paper.items():
            got = accel.complex_fft([1000] * n, [0] * n).cycles
            assert got == pytest.approx(cycles, rel=0.06)
        paper_real = {512: 3523, 1024: 8007, 2048: 16490}
        for n, cycles in paper_real.items():
            got = accel.real_fft([1000] * n).cycles
            assert got == pytest.approx(cycles, rel=0.06)

    def test_dynamic_scaling_engages(self):
        # Full-scale input forces block-exponent growth without overflow.
        x = [32767 if i % 2 == 0 else -32768 for i in range(512)]
        result = FftAccelerator().real_fft(x)
        assert result.scale > 0
        limit = 1 << 17
        assert all(-limit <= v < limit for v in result.re)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            FftAccelerator().complex_fft([0] * 100, [0] * 100)

    def test_events_logged(self):
        events = EventCounters()
        FftAccelerator(events).real_fft([100] * 512)
        assert events.get(Ev.FFT_ACCEL_BUTTERFLY) > 0
        assert events.get(Ev.FFT_ACCEL_IO) == 512 + 257


class TestPlatformDma:
    def test_roundtrip_and_interrupt(self):
        soc = BiosignalSoC()
        soc.with_accelerators()
        soc.sram.poke_words(0, list(range(64)))
        cycles = soc.dma_to_vwr2a(0, 128, 64)
        assert cycles > 64
        assert soc.vwr2a.spm.peek_words(128, 64) == list(range(64))
        back = soc.dma_from_vwr2a(128, 1000, 64)
        assert soc.sram.peek_words(1000, 64) == list(range(64))
        assert back > 64

    def test_gated_accelerators_refuse_work(self):
        soc = BiosignalSoC()
        soc.without_accelerators()
        with pytest.raises(ConfigurationError):
            soc.dma_to_vwr2a(0, 0, 4)

    def test_cpu_sleeps_during_kernel(self):
        soc = BiosignalSoC()
        soc.with_accelerators()
        before = soc.cpu.sleep_cycles
        soc.dma_to_vwr2a(0, 0, 16)
        assert soc.cpu.sleep_cycles > before

    @given(st.integers(1, 500))
    @settings(max_examples=20, deadline=None)
    def test_dma_gather_preserves_data(self, n):
        soc = BiosignalSoC()
        soc.with_accelerators()
        data = list(range(n))
        soc.sram.poke_words(0, data)
        order = list(reversed(range(n)))
        soc.vwr2a.dma.to_spm_gather(
            soc.sram, [0 + i for i in order], 0
        )
        assert soc.vwr2a.spm.peek_words(0, n) == list(reversed(data))
