"""The paper's proposed 16-bit SIMD mode (Sec. 5.1.1).

"One solution could be to have a 16-bit mode with two simultaneous 16-bit
operations instead of one 32-bit operation." Implemented as dual-lane
SADD16 / SSUB16 / FXPMUL16 ALU ops: two packed signed 16-bit lanes per
32-bit word, which doubles elementwise q15 throughput per VWR pass.
"""

from hypothesis import given, strategies as st

from repro.arch import DEFAULT_PARAMS
from repro.core import Vwr2a
from repro.core.alu import alu_execute
from repro.isa import KernelConfig, Vwr
from repro.isa.encoding import decode_rc, encode_rc
from repro.isa.fields import DST_VWR_C, VWR_A, VWR_B
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.rc import SIMD16_OPS, RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder
from repro.utils.bits import sign_extend, to_signed32

lane = st.integers(-(2**15), 2**15 - 1)


def pack(lo: int, hi: int) -> int:
    return to_signed32(((hi & 0xFFFF) << 16) | (lo & 0xFFFF))


def lanes(word: int):
    return (sign_extend(word, 16), sign_extend(to_signed32(word) >> 16, 16))


@given(lane, lane, lane, lane)
def test_sadd16_lane_independence(a0, a1, b0, b1):
    out = alu_execute(RCOp.SADD16, pack(a0, a1), pack(b0, b1))
    lo, hi = lanes(out)
    assert lo == sign_extend(a0 + b0, 16)
    assert hi == sign_extend(a1 + b1, 16)


@given(lane, lane, lane, lane)
def test_ssub16_lane_independence(a0, a1, b0, b1):
    out = alu_execute(RCOp.SSUB16, pack(a0, a1), pack(b0, b1))
    lo, hi = lanes(out)
    assert lo == sign_extend(a0 - b0, 16)
    assert hi == sign_extend(a1 - b1, 16)


@given(lane, lane)
def test_fxpmul16_matches_scalar_q15(a, b):
    out = alu_execute(RCOp.FXPMUL16, pack(a, a), pack(b, b))
    lo, hi = lanes(out)
    expected = sign_extend((a * b) >> 15, 16)
    assert lo == hi == expected


def test_fxpmul16_half_times_half():
    half = 0x4000  # q15 0.5
    out = alu_execute(RCOp.FXPMUL16, pack(half, half), pack(half, half))
    assert lanes(out) == (0x2000, 0x2000)


def test_simd16_encoding_roundtrip():
    for op in SIMD16_OPS:
        instr = rc(op, DST_VWR_C, VWR_A, VWR_B)
        assert decode_rc(encode_rc(instr)) == instr


def test_simd16_doubles_vector_throughput():
    """One VWR pass of SADD16 processes 256 q15 values (2 per word)."""
    sim = Vwr2a()
    xs = [pack(i, 1000 + i) for i in range(128)]
    ys = [pack(2, 3)] * 128
    sim.spm.poke_words(0, xs)
    sim.spm.poke_words(128, ys)
    kb = ColumnKernelBuilder(DEFAULT_PARAMS)
    kb.srf(0, 0)
    kb.srf(1, 1)
    kb.srf(2, 2)
    kb.emit(lsu=ld_vwr(Vwr.A, 0))
    kb.vector_pass(
        rc(RCOp.SADD16, DST_VWR_C, VWR_A, VWR_B),
        setup_lsu=ld_vwr(Vwr.B, 1),
    )
    kb.emit(lsu=st_vwr(Vwr.C, 2))
    kb.exit()
    result = sim.execute(KernelConfig(name="simd", columns={0: kb.build()}))
    out = sim.spm.peek_words(256, 128)
    assert out == [pack(i + 2, 1003 + i) for i in range(128)]
    # 256 q15 additions in a 32-cycle pass: 8 lanes/cycle on one column
    # (load + setup + 32-cycle pass + store + exit).
    assert result.cycles == 36
