"""CPU baseline tests: q15 kernels vs numpy/scipy, cycle models vs paper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    cfft_cycles,
    cfft_q15,
    delineate,
    extract_features,
    fir_cycles,
    fir_q15,
    lowpass_taps_q15,
    mean_int,
    median_int,
    predict,
    rfft_cycles,
    rfft_q15,
    rms_int,
    default_workload_model,
)
from repro.baselines.dsp import _intervals, band_power

q15_lists = st.lists(
    st.integers(-20000, 20000), min_size=16, max_size=64
)


class TestFirQ15:
    def test_impulse_response_recovers_taps(self):
        taps = lowpass_taps_q15(11, 0.1)
        x = [1 << 14] + [0] * 31
        out = fir_q15(x, taps).samples
        for i, tap in enumerate(taps):
            assert out[i] == pytest.approx(tap // 2, abs=1)

    def test_matches_numpy_convolution(self):
        rng = np.random.default_rng(0)
        taps = lowpass_taps_q15(11, 0.12)
        x = (rng.uniform(-0.5, 0.5, 300) * 32768).astype(int).tolist()
        got = np.array(fir_q15(x, taps).samples)
        ref = np.convolve(x, taps, "full")[:300] / 32768
        assert np.max(np.abs(got - ref)) <= 1.0

    def test_block_state_continuity(self):
        taps = lowpass_taps_q15(11, 0.1)
        x = list(range(-50, 50))
        whole = fir_q15(x, taps).samples
        first = fir_q15(x[:50], taps)
        second = fir_q15(x[50:], taps, state=x[40:50])
        assert first.samples + second.samples == whole

    def test_cycles_match_table4(self):
        for n, paper in [(256, 24747), (512, 49253), (1024, 98283)]:
            assert fir_cycles(n, 11) == pytest.approx(paper, rel=0.01)

    @given(q15_lists)
    @settings(max_examples=25, deadline=None)
    def test_output_in_q15_range(self, x):
        taps = lowpass_taps_q15(11, 0.2)
        for y in fir_q15(x, taps).samples:
            assert -(1 << 15) <= y <= (1 << 15) - 1


class TestFftQ15:
    def test_cfft_matches_numpy(self):
        rng = np.random.default_rng(1)
        n = 256
        re = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        im = (rng.uniform(-0.4, 0.4, n) * 32768).astype(int).tolist()
        result = cfft_q15(re, im)
        ref = np.fft.fft((np.array(re) + 1j * np.array(im)) / 32768)
        got = np.array(result.spectrum())
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 0.01

    def test_rfft_matches_numpy(self):
        rng = np.random.default_rng(2)
        x = (rng.uniform(-0.5, 0.5, 512) * 32768).astype(int).tolist()
        result = rfft_q15(x)
        ref = np.fft.rfft(np.array(x) / 32768)
        got = np.array(result.spectrum())
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 0.01
        assert len(result.re) == 257

    def test_cycles_match_table2_cpu(self):
        for n, paper in [(512, 47926), (1024, 84753), (2048, 219667)]:
            assert cfft_cycles(n) == pytest.approx(paper, rel=0.02)
        for n, paper in [(512, 24927), (1024, 62326), (2048, 113489)]:
            assert rfft_cycles(n) == pytest.approx(paper, rel=0.02)

    def test_parseval_like_energy_preservation(self):
        rng = np.random.default_rng(3)
        x = (rng.uniform(-0.3, 0.3, 256) * 32768).astype(int).tolist()
        result = cfft_q15(x, [0] * 256)
        ref = np.fft.fft(np.array(x) / 32768)
        got = np.array(result.spectrum())
        assert np.sum(np.abs(got) ** 2) == pytest.approx(
            np.sum(np.abs(ref) ** 2), rel=0.05
        )

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            cfft_q15([0] * 3, [0] * 3)
        with pytest.raises(ValueError):
            rfft_q15([0] * 100)


class TestDelineation:
    def _sine(self, n=400, period=50, amp=8000):
        t = np.arange(n)
        return (amp * np.sin(2 * np.pi * t / period)).astype(int).tolist()

    def test_finds_all_extrema_of_clean_sine(self):
        sig = self._sine()
        d = delineate(sig, 2000)
        assert 6 <= len(d.maxima) <= 9
        assert 6 <= len(d.minima) <= 9
        # Extrema alternate.
        merged = sorted(
            [(p, "M") for p in d.maxima] + [(p, "m") for p in d.minima]
        )
        kinds = [k for _, k in merged]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))

    def test_noise_below_threshold_ignored(self):
        rng = np.random.default_rng(4)
        flat = rng.integers(-100, 100, 500).tolist()
        d = delineate(flat, 5000)
        assert d.maxima == [] and d.minima == []

    def test_intervals_positive(self):
        d = delineate(self._sine(), 2000)
        assert all(v > 0 for v in d.insp_times)
        assert all(v > 0 for v in d.exp_times)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            delineate([1, 2, 3], 0)

    @given(st.lists(st.integers(-30000, 30000), min_size=2, max_size=200),
           st.integers(1, 10000))
    @settings(max_examples=50, deadline=None)
    def test_positions_strictly_increasing(self, sig, thr):
        d = delineate(sig, thr)
        for arr in (d.maxima, d.minima):
            assert all(a < b for a, b in zip(arr, arr[1:]))


class TestFeaturesAndSvm:
    def test_stat_helpers(self):
        assert mean_int([1, 2, 3, 4]) == 2
        assert median_int([5, 1, 3]) == 3
        assert median_int([4, 1, 3, 2]) == 2
        assert rms_int([3, 4]) == 3       # isqrt(12.5) = 3
        assert mean_int([]) == 0 and median_int([]) == 0 and rms_int([]) == 0

    def test_band_power(self):
        re = [0, 10, 20, 0]
        im = [0, 0, 5, 0]
        assert band_power(re, im, 1, 3) == 100 + 400 + 25
        with pytest.raises(ValueError):
            band_power(re, im, 2, 9)

    def test_intervals_pairing(self):
        assert _intervals([10, 50], [30, 70]) == [20, 20]
        assert _intervals([10], []) == []
        assert _intervals([10, 30], [20]) == [10]

    def test_extract_features_shape(self):
        fs = extract_features([30, 32], [40, 38], [0] * 257, [0] * 257)
        assert len(fs.values) == 8
        assert fs.cycles > 0

    def test_svm_linear_decision(self):
        model = default_workload_model()
        n = len(model.weights[0])
        high = predict(model, [0] * (n - 1) + [100])
        low = predict(model, [100, 100, 100, 100, 100, 100] + [0] * (n - 6))
        assert high.label == 1
        assert low.label == -1

    def test_svm_rejects_dim_mismatch(self):
        model = default_workload_model()
        with pytest.raises(ValueError):
            predict(model, [1, 2, 3])
