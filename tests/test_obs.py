"""The observability layer: bus semantics, exposition format, overhead.

Four contracts (ISSUE 9 / docs/observability.md):

* **snapshot/delta semantics** — counters and histograms subtract
  across :meth:`~repro.obs.MetricsBus.since`, gauges pass through as
  levels, mirroring ``StoreStats.snapshot/since``;
* **Prometheus text format** — a golden test pins the exposition
  byte-for-byte (sorted families/series, HELP/TYPE from the registry,
  cumulative ``le`` buckets) and the parser round-trips it;
* **zero cost when off** — the disabled instrumentation path (the
  default) allocates nothing;
* **bus == report** — over a pooled run, bus totals equal the merged
  :class:`~repro.serve.StreamReport` counts bit-for-bit (integer
  counters exactly; float energy to within accumulation-order
  tolerance).
"""

from __future__ import annotations

import math
import tracemalloc

import pytest

from repro.app.mbiotracker import WINDOW
from repro.app.signals import respiration_signal
from repro.obs import (
    REGISTRY,
    MetricError,
    MetricsBus,
    MetricsExporter,
    MonitorModel,
    default_bus,
    get_bus,
    parse_prometheus,
    recording,
    render_prometheus,
    render_text,
    snapshot_samples,
    sparkline,
    textual_available,
)
from repro.serve import serve_trace


# -- bus semantics ------------------------------------------------------------


def test_counter_snapshot_delta():
    bus = MetricsBus()
    bus.inc("requests_total")
    bus.inc("requests_total", 2.0, route="a")
    before = bus.snapshot()
    bus.inc("requests_total", 5.0)
    bus.inc("requests_total", route="b")
    delta = bus.since(before)
    assert delta.counter("requests_total") == 5.0
    assert delta.counter("requests_total", route="a") == 0.0
    assert delta.counter("requests_total", route="b") == 1.0
    # The snapshot itself is immutable history.
    assert before.counter("requests_total") == 1.0


def test_gauges_are_levels_not_deltas():
    bus = MetricsBus()
    bus.set_gauge("depth", 3, worker="0")
    before = bus.snapshot()
    bus.set_gauge("depth", 7, worker="0")
    # since() carries the current level — subtracting levels would
    # produce a meaningless "gauge delta".
    assert bus.since(before).gauge("depth", worker="0") == 7
    bus.drop_gauge("depth", worker="0")
    assert bus.snapshot().gauge("depth", worker="0") is None


def test_histogram_snapshot_delta():
    bus = MetricsBus(buckets={"lat": (1.0, 10.0, 100.0)})
    for value in (0.5, 5.0, 50.0):
        bus.observe("lat", value)
    before = bus.snapshot()
    bus.observe("lat", 500.0)
    bus.observe("lat", 5.0)
    delta = bus.since(before).histogram("lat")
    assert delta.counts == (0, 1, 0, 1)  # one in (1,10], one overflow
    assert delta.sum == 505.0
    assert delta.count == 2
    full = bus.snapshot().histogram("lat")
    assert full.counts == (1, 2, 1, 1)
    assert full.count == 5


def test_kind_clash_and_validation():
    bus = MetricsBus()
    bus.inc("n")
    with pytest.raises(MetricError):
        bus.set_gauge("n", 1.0)
    with pytest.raises(MetricError):
        bus.inc("bad name")
    with pytest.raises(MetricError):
        bus.inc("ok", **{"0bad": "v"})
    with pytest.raises(MetricError):
        bus.inc("n", -1.0)


def test_recording_installs_and_restores():
    assert get_bus() is None
    with recording() as bus:
        assert get_bus() is bus
        with recording() as inner:
            assert get_bus() is inner
        assert get_bus() is bus
    assert get_bus() is None


# -- Prometheus text format ---------------------------------------------------

#: Byte-for-byte golden exposition: sorted families and series,
#: HELP/TYPE headers from the registry, cumulative le buckets.
GOLDEN = """\
# HELP repro_pool_queue_depth Dispatched-but-unfinished windows by worker label [windows]
# TYPE repro_pool_queue_depth gauge
repro_pool_queue_depth{worker="0"} 2
repro_pool_queue_depth{worker="1"} 0
# HELP repro_window_cycles Per-window simulated-cycle distribution [cycles]
# TYPE repro_window_cycles histogram
repro_window_cycles_bucket{le="100"} 1
repro_window_cycles_bucket{le="1000"} 3
repro_window_cycles_bucket{le="+Inf"} 4
repro_window_cycles_sum 13050
repro_window_cycles_count 4
# HELP repro_windows_served_total Windows whose WindowResult was accepted into the report [windows]
# TYPE repro_windows_served_total counter
repro_windows_served_total 4
# HELP unregistered_total (unregistered metric)
# TYPE unregistered_total counter
unregistered_total{q="say \\"hi\\""} 1.5
"""


def golden_bus() -> MetricsBus:
    bus = MetricsBus(buckets={"repro_window_cycles": (100.0, 1000.0)})
    bus.inc("repro_windows_served_total", 4)
    bus.set_gauge("repro_pool_queue_depth", 2, worker="0")
    bus.set_gauge("repro_pool_queue_depth", 0, worker="1")
    for cycles in (50, 500, 500, 12_000):
        bus.observe("repro_window_cycles", cycles)
    bus.inc("unregistered_total", 1.5, q='say "hi"')
    return bus


def test_prometheus_golden():
    assert render_prometheus(golden_bus()) == GOLDEN


def test_prometheus_parse_roundtrip():
    samples = parse_prometheus(GOLDEN)
    assert samples[("repro_windows_served_total", ())] == 4.0
    assert samples[
        ("repro_pool_queue_depth", (("worker", "0"),))
    ] == 2.0
    assert samples[
        ("repro_window_cycles_bucket", (("le", "+Inf"),))
    ] == 4.0
    assert samples[("repro_window_cycles_sum", ())] == 13050.0
    assert samples[
        ("unregistered_total", (("q", 'say "hi"'),))
    ] == 1.5


def test_render_accepts_bus_and_snapshot_only():
    bus = golden_bus()
    assert render_prometheus(bus.snapshot()) == render_prometheus(bus)
    with pytest.raises(TypeError):
        render_prometheus({"not": "a bus"})


def test_exporter_serves_the_render():
    import urllib.request

    bus = golden_bus()
    with MetricsExporter(bus) as url:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            body = response.read().decode()
            content_type = response.headers["Content-Type"]
    assert body == render_prometheus(bus)
    assert "version=0.0.4" in content_type


# -- zero cost when off -------------------------------------------------------


def test_disabled_path_allocates_nothing():
    """The default (no bus installed) instrumentation path is free.

    Every call site guards on ``get_bus() is not None``; this pins that
    the guard itself — a module-global read plus an identity test —
    performs zero allocations, so leaving instrumentation in the hot
    loops costs nothing when observability is off.
    """
    assert get_bus() is None
    # Warm-up outside measurement (first-call caches, tracemalloc's own).
    for _ in range(10):
        if get_bus() is not None:  # pragma: no cover
            raise AssertionError
    # Pre-built iterator: the loop machinery itself must not count.
    iterations = iter([None] * 1000)
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base_current, _ = tracemalloc.get_traced_memory()
        for _ in iterations:
            bus = get_bus()
            if bus is not None:  # pragma: no cover
                bus.inc("never")
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert current - base_current == 0
    assert peak - base_current == 0


# -- bus totals == merged report, over a pooled run ---------------------------


@pytest.fixture(scope="module")
def pooled_run():
    trace = respiration_signal(4 * WINDOW)
    with recording(default_bus()) as bus:
        report = serve_trace(trace, workers=2)
    return bus.snapshot(), report


def test_pool_bus_matches_report_counts(pooled_run):
    """Integer bus totals equal the merged report's, bit-for-bit."""
    snap, report = pooled_run
    assert snap.counter("repro_windows_served_total") == report.n_windows
    assert snap.counter("repro_window_cycles_total") == report.total_cycles
    assert snap.counter("repro_windows_failed_total") == report.n_failed
    for engine, count in report.engine_counts.items():
        assert snap.counter("repro_launches_total", engine=engine) == count
    assert sum(
        snap.counter_family("repro_launches_total").values()
    ) == sum(report.engine_counts.values())
    assert snap.counter(
        "repro_staging_cycles_total", direction="in"
    ) == sum(w.staging_in_cycles for w in report.windows)
    assert snap.counter(
        "repro_staging_cycles_total", direction="out"
    ) == sum(w.staging_out_cycles for w in report.windows)
    for event, count in report.store_stats.items():
        if count:
            assert snap.counter(
                "repro_config_store_total", event=event
            ) == count
    # Per-worker tallies cover the stream exactly once.
    assert sum(
        snap.counter_family("repro_pool_worker_windows_total").values()
    ) == report.n_windows


def test_pool_bus_matches_report_energy(pooled_run):
    """Float energy totals agree to accumulation-order tolerance."""
    snap, report = pooled_run
    assert math.isclose(
        snap.counter("repro_energy_uj_total"),
        report.total_energy_uj,
        rel_tol=1e-9,
    )
    for kernel, pj in report.energy_by_kernel.items():
        assert math.isclose(
            snap.counter("repro_kernel_energy_pj_total", kernel=kernel),
            pj, rel_tol=1e-9,
        )
    hist = snap.histogram("repro_window_energy_uj")
    assert hist is not None and hist.count == report.n_windows


def test_pool_emits_only_registered_metrics(pooled_run):
    """Every family a pooled run emits is in the docs' registry."""
    snap, _ = pooled_run
    emitted = {key[0] for key in snap.counters}
    emitted |= {key[0] for key in snap.gauges}
    emitted |= {key[0] for key in snap.histograms}
    unregistered = emitted - set(REGISTRY)
    assert not unregistered, f"undocumented metrics: {sorted(unregistered)}"
    for name in emitted:
        assert snap.kinds[name] == REGISTRY[name].kind


def test_instrumented_run_is_bit_identical(pooled_run):
    """Observing a run does not perturb it: same stream served with the
    bus off merges to an identical report (engines included)."""
    _, observed = pooled_run
    assert get_bus() is None
    baseline = serve_trace(respiration_signal(4 * WINDOW), workers=2)
    assert baseline.identical_to(observed) is None


# -- monitor model / TUI ------------------------------------------------------


def test_monitor_model_and_text_dashboard(pooled_run):
    snap, report = pooled_run
    model = MonitorModel()
    model.ingest(snapshot_samples(snap), now=1.0)
    done, total = model.progress()
    assert (done, total) == (report.n_windows, report.n_windows)
    assert model.throughput() > 0
    workers = model.worker_rows()
    assert {row[0] for row in workers} == {"0", "1"}
    assert sum(row[1] for row in workers) == report.n_windows
    engines = dict(
        (engine, count) for engine, count, _ in model.engine_rows()
    )
    assert engines == report.engine_counts
    text = render_text(model)
    assert "windows/s" in text and "engines:" in text


def test_monitor_model_rates_and_trend():
    bus = MetricsBus()
    model = MonitorModel()
    for tick in range(1, 4):
        bus.inc("repro_windows_served_total")
        bus.inc("repro_energy_uj_total", float(tick))
        model.ingest_bus(bus, now=float(tick))
    # 2 windows over 2 seconds past the baseline tick.
    assert model._rate(("repro_windows_served_total", ())) == 1.0
    assert model.energy_per_window() == [2.0, 3.0]
    assert len(sparkline([1.0, 2.0, 3.0])) == 3
    model.paused = True
    model.ingest_bus(bus, now=10.0)
    assert model.ticks[-1][0] == 3.0  # paused: tick dropped


@pytest.mark.skipif(
    not textual_available(), reason="textual is not installed"
)
def test_textual_app_builds():  # pragma: no cover - optional dep
    from repro.obs import build_app

    app = build_app(lambda: {}, interval=0.1)
    assert app.model is not None


def test_build_app_explains_missing_textual():
    if textual_available():  # pragma: no cover - optional dep
        pytest.skip("textual installed; error path not reachable")
    from repro.obs import build_app

    with pytest.raises(RuntimeError, match="--plain"):
        build_app(lambda: {})


# -- StoreStats.as_dict (the satellite fix) -----------------------------------


def test_store_stats_as_dict():
    from repro.core.config_mem import StoreStats

    stats = StoreStats()
    stats.stores = 3
    stats.dedup_hits = 2
    as_dict = stats.as_dict()
    assert as_dict["stores"] == 3 and as_dict["dedup_hits"] == 2
    assert set(as_dict) == set(stats.snapshot())
    # record_store_stats accepts the live object through as_dict().
    bus = MetricsBus()
    from repro.obs.instruments import record_store_stats

    record_store_stats(bus, stats)
    assert bus.counter("repro_config_store_total", event="stores") == 3
