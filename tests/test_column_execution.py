"""Cycle-level column semantics: units, hazards, loops, neighbours."""

import pytest

from repro.core import StructuralHazardError, Vwr2a
from repro.core.hazards import check_bundle
from repro.asm.builder import ProgramBuilder
from repro.isa import KernelConfig, Vwr, make_bundle
from repro.isa.fields import (
    DST_R0,
    DST_VWR_A,
    DST_VWR_C,
    RCB,
    RCT,
    VWR_A,
    VWR_B,
    dst_srf,
    imm,
    srf,
)
from repro.isa.lcu import addi, blt, ldsrf, seti
from repro.isa.lsu import ld_srf, ld_vwr, set_srf, shuf, st_srf, st_vwr
from repro.isa.mxcu import inck, setk
from repro.isa.rc import RCOp, rc
from repro.isa.fields import ShuffleMode


def run_single(builder_fn, spm_setup=None):
    sim = Vwr2a()
    if spm_setup:
        spm_setup(sim.spm)
    b = ProgramBuilder()
    builder_fn(b)
    cfg = KernelConfig(name="t", columns={0: b.build()})
    result = sim.execute(cfg)
    return sim, result


def test_mxcu_same_cycle_index():
    """The MXCU's index applies combinationally to the same bundle."""
    def build(b):
        b.srf(0, 0)
        b.emit(lsu=ld_vwr(Vwr.A, 0))
        b.emit(mxcu=setk(5),
               rcs=[rc(RCOp.MOV, DST_VWR_C, VWR_A)] * 4)
        b.emit(lsu=st_vwr(Vwr.C, 0))
        b.exit()

    sim, _ = run_single(
        build, lambda spm: spm.poke_words(0, list(range(128)))
    )
    out = sim.spm.peek_words(0, 128)
    # Each RC copied its slice word 5.
    for s in range(4):
        assert out[32 * s + 5] == 32 * s + 5


def test_mxcu_upd_xor_mirror():
    """k = ((k + inc) & and) ^ xor implements within-slice mirroring."""
    sim = Vwr2a()
    col = sim.columns[0]
    col.k = 31
    col._exec_mxcu(inck(1, xor_mask=31))   # (31+1)&31=0 ^31 = 31
    assert col.k == 31
    col._exec_mxcu(inck(0, xor_mask=31))   # 31^31 = 0
    assert col.k == 0


def test_rc_neighbour_previous_cycle():
    """RCT/RCB read the neighbouring RC's previous-cycle result."""
    def build(b):
        # Cycle 1: every RC computes its own id into the latch.
        b.emit(rcs=[rc(RCOp.MOV, DST_R0, imm(10 + i)) for i in range(4)])
        # Cycle 2: every RC copies its top neighbour's latch to VWR C.
        b.emit(mxcu=setk(0),
               rcs=[rc(RCOp.MOV, DST_VWR_C, RCT)] * 4)
        b.srf(0, 0)
        b.emit(lsu=st_vwr(Vwr.C, 0))
        b.exit()

    sim, _ = run_single(build)
    out = sim.spm.peek_words(0, 128)
    # RC i sees RC (i-1) % 4: RC0 <- RC3 (wrap), RC1 <- RC0, ...
    assert [out[0], out[32], out[64], out[96]] == [13, 10, 11, 12]


def test_rcb_wraps_down():
    def build(b):
        b.emit(rcs=[rc(RCOp.MOV, DST_R0, imm(20 + i)) for i in range(4)])
        b.emit(mxcu=setk(0), rcs=[rc(RCOp.MOV, DST_VWR_C, RCB)] * 4)
        b.srf(0, 0)
        b.emit(lsu=st_vwr(Vwr.C, 0))
        b.exit()

    sim, _ = run_single(build)
    out = sim.spm.peek_words(0, 128)
    assert [out[0], out[32], out[64], out[96]] == [21, 22, 23, 20]


def test_lcu_counted_loop_cycles():
    """Table-1 style loop: 2-bundle body, one element per cycle."""
    def build(b):
        b.srf(0, 0)
        b.srf(1, 1)
        b.emit(lsu=ld_vwr(Vwr.A, 0), lcu=seti(0, 0), mxcu=setk(31))
        b.label("l")
        body = [rc(RCOp.SADD, DST_VWR_C, VWR_A, imm(1))] * 4
        b.emit(rcs=body, mxcu=inck(1), lcu=addi(0, 1))
        b.emit(rcs=body, mxcu=inck(1), lcu=blt(0, 16, "l"))
        b.emit(lsu=st_vwr(Vwr.C, 1))
        b.exit()

    sim, result = run_single(
        build, lambda spm: spm.poke_words(0, list(range(128)))
    )
    assert sim.spm.peek_words(128, 128) == [v + 1 for v in range(128)]
    # 1 setup + 32 body + 1 store + 1 exit = 35 cycles.
    assert result.cycles == 35


def test_lsu_scalar_copy_and_post_increment():
    def build(b):
        b.srf(0, 3)     # src word address
        b.srf(1, 200)   # dst word address
        b.emit(lsu=ld_srf(2, 0, inc=1))
        b.emit(lsu=st_srf(2, 1, inc=1))
        b.emit(lsu=ld_srf(2, 0))
        b.emit(lsu=st_srf(2, 1))
        b.exit()

    sim, _ = run_single(
        build, lambda spm: spm.poke_words(0, [10, 11, 12, 13, 14])
    )
    assert sim.spm.peek_words(200, 2) == [13, 14]


def test_lsu_shuffle_op():
    def build(b):
        b.srf(0, 0)
        b.srf(1, 1)
        b.srf(2, 2)
        b.emit(lsu=ld_vwr(Vwr.A, 0))
        b.emit(lsu=ld_vwr(Vwr.B, 1))
        b.emit(lsu=shuf(ShuffleMode.INTERLEAVE_LO))
        b.emit(lsu=st_vwr(Vwr.C, 2))
        b.exit()

    sim, _ = run_single(
        build,
        lambda spm: (spm.poke_words(0, list(range(128))),
                     spm.poke_words(128, list(range(1000, 1128)))),
    )
    out = sim.spm.peek_words(256, 128)
    assert out[0::2] == list(range(64))
    assert out[1::2] == list(range(1000, 1064))


def test_missing_exit_raises():
    sim = Vwr2a()
    b = ProgramBuilder()
    b.emit()
    with pytest.raises(Exception):
        b.build()


def test_runaway_guard():
    def build(b):
        b.label("l")
        b.emit(lcu=addi(0, 1))
        b.emit(lcu=blt(0, 60000, "l"))
        b.exit()

    sim = Vwr2a()
    b = ProgramBuilder()
    build(b)
    cfg = KernelConfig(name="t", columns={0: b.build()})
    sim.store_kernel(cfg)
    with pytest.raises(Exception, match="exceeded"):
        sim.run("t", max_cycles=1000)


class TestHazards:
    def test_srf_two_units_conflict(self):
        bundle = make_bundle(
            lcu=ldsrf(0, 1),
            lsu=set_srf(2, 5),
        )
        with pytest.raises(StructuralHazardError, match="SRF"):
            check_bundle(bundle, 0)

    def test_rc_broadcast_same_entry_ok(self):
        bundle = make_bundle(
            rcs=[rc(RCOp.SADD, DST_R0, srf(3), imm(1))] * 4
        )
        check_bundle(bundle, 0)

    def test_rc_different_entries_conflict(self):
        bundle = make_bundle(rcs=[
            rc(RCOp.SADD, DST_R0, srf(1), imm(0)),
            rc(RCOp.SADD, DST_R0, srf(2), imm(0)),
        ])
        with pytest.raises(StructuralHazardError, match="different entries"):
            check_bundle(bundle, 0)

    def test_rc_read_write_mix_conflict(self):
        bundle = make_bundle(rcs=[
            rc(RCOp.MOV, dst_srf(0), imm(1)),
            rc(RCOp.MOV, DST_R0, srf(1)),
        ])
        with pytest.raises(StructuralHazardError, match="mixes"):
            check_bundle(bundle, 0)

    def test_vwr_wide_vs_datapath_conflict(self):
        bundle = make_bundle(
            lsu=ld_vwr(Vwr.A, 0),
            rcs=[rc(RCOp.MOV, DST_R0, VWR_A)] * 4,
        )
        with pytest.raises(StructuralHazardError, match="VWR"):
            check_bundle(bundle, 0)

    def test_vwr_datapath_read_write_same_register_ok(self):
        # Table 1 of the paper: VWRA = VWRA - VWRB (latch timing).
        bundle = make_bundle(
            rcs=[rc(RCOp.SSUB, DST_VWR_A, VWR_A, VWR_B)] * 4
        )
        check_bundle(bundle, 0)

    def test_shuffle_excludes_all_datapath_vwr_use(self):
        bundle = make_bundle(
            lsu=shuf(ShuffleMode.EVEN_PRUNE),
            rcs=[rc(RCOp.MOV, DST_R0, VWR_B)] * 4,
        )
        with pytest.raises(StructuralHazardError):
            check_bundle(bundle, 0)

    def test_store_rejects_hazardous_kernel(self):
        sim = Vwr2a()
        b = ProgramBuilder()
        b.emit(lcu=ldsrf(0, 0), lsu=set_srf(1, 2))
        b.exit()
        with pytest.raises(StructuralHazardError):
            sim.store_kernel(KernelConfig(name="bad", columns={0: b.build()}))
