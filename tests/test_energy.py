"""Energy-model tests: calibration reproduces the paper's anchors."""

import pytest

from repro.core.events import Ev
from repro.energy import (
    COMPONENT_OF_EVENT,
    VWR2A_COMPONENTS,
    default_model,
    default_table,
    table3_breakdown,
)
from repro.energy.anchors import (
    CPU_PJ_PER_CYCLE,
    FFT_ACCEL_TOTAL_MW,
    VWR2A_POWER_MW,
    VWR2A_TOTAL_MW,
)
from repro.energy.tables import _accel_anchor, _vwr2a_anchor


@pytest.fixture(scope="module")
def model():
    return default_model()


@pytest.fixture(scope="module")
def vwr2a_anchor():
    return _vwr2a_anchor()


@pytest.fixture(scope="module")
def accel_anchor():
    return _accel_anchor()


def test_every_vwr2a_event_is_mapped():
    for attr, name in vars(Ev).items():
        if attr.startswith("_") or not isinstance(name, str):
            continue
        if name.startswith("cpu."):
            continue
        assert name in COMPONENT_OF_EVENT, name


def test_table_has_positive_energies():
    table = default_table()
    assert all(v >= 0 for v in table.per_event_pj.values())
    assert all(v >= 0 for v in table.leakage_pj_per_cycle.values())
    assert table.cpu_pj_per_cycle == CPU_PJ_PER_CYCLE


def test_anchor_reproduces_table3_total(model, vwr2a_anchor):
    report = model.vwr2a_report(vwr2a_anchor.events, vwr2a_anchor.cycles)
    assert report.power_mw() == pytest.approx(VWR2A_TOTAL_MW, rel=0.02)


def test_anchor_reproduces_table3_components(model, vwr2a_anchor):
    report = model.vwr2a_report(vwr2a_anchor.events, vwr2a_anchor.cycles)
    rows = table3_breakdown(report)
    assert rows["DMA"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["dma"], rel=0.05
    )
    assert rows["Memories"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["memories"], rel=0.05
    )
    assert rows["Control"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["control"], rel=0.05
    )
    assert rows["Datapath"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["datapath"], rel=0.05
    )


def test_accel_anchor_reproduces_total(model, accel_anchor):
    report = model.accel_report(accel_anchor.events, accel_anchor.cycles)
    assert report.power_mw() == pytest.approx(FFT_ACCEL_TOTAL_MW, rel=0.02)


def test_power_ratio_matches_paper(model, vwr2a_anchor, accel_anchor):
    ours = model.vwr2a_report(
        vwr2a_anchor.events, vwr2a_anchor.cycles
    ).power_mw()
    theirs = model.accel_report(
        accel_anchor.events, accel_anchor.cycles
    ).power_mw()
    assert ours / theirs == pytest.approx(5.5, rel=0.05)


def test_leakage_scales_with_idle_cycles(model):
    """More idle cycles, same activity -> more energy, lower power."""
    events = {Ev.RC_ALU_ADD: 1000}
    short = model.vwr2a_report(events, 1000)
    long = model.vwr2a_report(events, 10000)
    assert long.total_pj > short.total_pj
    assert long.power_mw() < short.power_mw()


def test_activity_based_power_varies_by_kernel(model):
    """Low-activity (control-heavy) windows draw less power than the FFT
    anchor — the paper's delineation row behaviour."""
    anchor = _vwr2a_anchor()
    fft_power = model.vwr2a_report(anchor.events, anchor.cycles).power_mw()
    sparse = {Ev.LCU_ISSUE: 5000, Ev.PM_FETCH: 35000, Ev.SRF_READ: 5000}
    sparse_power = model.vwr2a_report(sparse, 5000).power_mw()
    assert sparse_power < fft_power


def test_cpu_energy_helper(model):
    assert model.cpu_energy_uj(1_000_000) == pytest.approx(
        CPU_PJ_PER_CYCLE, rel=1e-6
    )


def test_report_component_scoping(model):
    events = {Ev.RC_ALU_MUL: 10, Ev.FFT_ACCEL_BUTTERFLY: 10}
    vwr2a = model.vwr2a_report(events, 10)
    assert "accel_datapath" not in vwr2a.by_component
    accel = model.accel_report(events, 10)
    assert "datapath" not in accel.by_component
    assert set(vwr2a.by_component) <= set(VWR2A_COMPONENTS)


# ---------------------------------------------------------------------------
# Histogram-native folding (the superblock-tier energy fast path)
# ---------------------------------------------------------------------------

def _compiled_fft_launches():
    """Kernel launches of a compiled FFT-256 flow (with histograms)."""
    from repro.kernels import FftEngine, KernelRunner
    from repro.soc.platform import BiosignalSoC

    runner = KernelRunner(soc=BiosignalSoC(engine="compiled"))
    log = []
    runner.launch_log = log
    signal = [((i * 37 + (i * i) % 211) % 2000) - 1000 for i in range(256)]
    FftEngine(runner, 256).run(signal, signal[::-1])
    return log


def test_fold_histogram_equals_per_event_energy(model):
    """Differential: histogram-folded == per-event energy, per launch."""
    launches = _compiled_fft_launches()
    assert launches
    for result in launches:
        assert result.block_histogram  # compiled path carries histograms
        materialized = {}
        for _, _, count, delta in result.block_histogram:
            for name, n in delta:
                materialized[name] = materialized.get(name, 0) + n * count
        folded = model.fold_histogram(
            (delta, count)
            for _, _, count, delta in result.block_histogram
        )
        direct = model.report(
            materialized, cycles=0, powered_components=()
        )
        assert set(folded.by_component) == set(direct.by_component)
        for component, pj in direct.by_component.items():
            assert folded.by_component[component] == pytest.approx(
                pj, rel=1e-9
            )


def test_fold_histogram_leakage_matches_report(model):
    histogram = (((Ev.RC_ALU_ADD, 3), (Ev.SRF_READ, 1)), 10),
    folded = model.fold_histogram(
        histogram, cycles=500, powered_components=("datapath", "control")
    )
    direct = model.report(
        {Ev.RC_ALU_ADD: 30, Ev.SRF_READ: 10}, 500,
        powered_components=("datapath", "control"),
    )
    for component, pj in direct.by_component.items():
        assert folded.by_component[component] == pytest.approx(pj)
    assert folded.cycles == direct.cycles == 500


def test_run_result_block_attribution_sums_to_launch_energy(model):
    launches = _compiled_fft_launches()
    result = max(launches, key=lambda r: len(r.block_histogram))
    per_block = result.energy_by_block(model)
    assert per_block  # (column, leader) -> component pJ
    totals = {}
    for folded in per_block.values():
        for component, pj in folded.items():
            totals[component] = totals.get(component, 0.0) + pj
    launch_totals = result.energy_pj(model)
    assert set(totals) == set(launch_totals)
    for component, pj in launch_totals.items():
        assert totals[component] == pytest.approx(pj, rel=1e-9)


def test_reference_launches_fold_to_nothing(model):
    from repro.core.cgra import RunResult

    empty = RunResult(name="r", cycles=1, config_cycles=0, column_steps={})
    assert empty.energy_pj(model) == {}
    assert empty.energy_by_block(model) == {}
