"""Energy-model tests: calibration reproduces the paper's anchors."""

import pytest

from repro.core.events import Ev
from repro.energy import (
    COMPONENT_OF_EVENT,
    VWR2A_COMPONENTS,
    default_model,
    default_table,
    table3_breakdown,
)
from repro.energy.anchors import (
    CPU_PJ_PER_CYCLE,
    FFT_ACCEL_TOTAL_MW,
    VWR2A_POWER_MW,
    VWR2A_TOTAL_MW,
)
from repro.energy.tables import _accel_anchor, _vwr2a_anchor


@pytest.fixture(scope="module")
def model():
    return default_model()


@pytest.fixture(scope="module")
def vwr2a_anchor():
    return _vwr2a_anchor()


@pytest.fixture(scope="module")
def accel_anchor():
    return _accel_anchor()


def test_every_vwr2a_event_is_mapped():
    for attr, name in vars(Ev).items():
        if attr.startswith("_") or not isinstance(name, str):
            continue
        if name.startswith("cpu."):
            continue
        assert name in COMPONENT_OF_EVENT, name


def test_table_has_positive_energies():
    table = default_table()
    assert all(v >= 0 for v in table.per_event_pj.values())
    assert all(v >= 0 for v in table.leakage_pj_per_cycle.values())
    assert table.cpu_pj_per_cycle == CPU_PJ_PER_CYCLE


def test_anchor_reproduces_table3_total(model, vwr2a_anchor):
    report = model.vwr2a_report(vwr2a_anchor.events, vwr2a_anchor.cycles)
    assert report.power_mw() == pytest.approx(VWR2A_TOTAL_MW, rel=0.02)


def test_anchor_reproduces_table3_components(model, vwr2a_anchor):
    report = model.vwr2a_report(vwr2a_anchor.events, vwr2a_anchor.cycles)
    rows = table3_breakdown(report)
    assert rows["DMA"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["dma"], rel=0.05
    )
    assert rows["Memories"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["memories"], rel=0.05
    )
    assert rows["Control"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["control"], rel=0.05
    )
    assert rows["Datapath"]["mw"] == pytest.approx(
        VWR2A_POWER_MW["datapath"], rel=0.05
    )


def test_accel_anchor_reproduces_total(model, accel_anchor):
    report = model.accel_report(accel_anchor.events, accel_anchor.cycles)
    assert report.power_mw() == pytest.approx(FFT_ACCEL_TOTAL_MW, rel=0.02)


def test_power_ratio_matches_paper(model, vwr2a_anchor, accel_anchor):
    ours = model.vwr2a_report(
        vwr2a_anchor.events, vwr2a_anchor.cycles
    ).power_mw()
    theirs = model.accel_report(
        accel_anchor.events, accel_anchor.cycles
    ).power_mw()
    assert ours / theirs == pytest.approx(5.5, rel=0.05)


def test_leakage_scales_with_idle_cycles(model):
    """More idle cycles, same activity -> more energy, lower power."""
    events = {Ev.RC_ALU_ADD: 1000}
    short = model.vwr2a_report(events, 1000)
    long = model.vwr2a_report(events, 10000)
    assert long.total_pj > short.total_pj
    assert long.power_mw() < short.power_mw()


def test_activity_based_power_varies_by_kernel(model):
    """Low-activity (control-heavy) windows draw less power than the FFT
    anchor — the paper's delineation row behaviour."""
    anchor = _vwr2a_anchor()
    fft_power = model.vwr2a_report(anchor.events, anchor.cycles).power_mw()
    sparse = {Ev.LCU_ISSUE: 5000, Ev.PM_FETCH: 35000, Ev.SRF_READ: 5000}
    sparse_power = model.vwr2a_report(sparse, 5000).power_mw()
    assert sparse_power < fft_power


def test_cpu_energy_helper(model):
    assert model.cpu_energy_uj(1_000_000) == pytest.approx(
        CPU_PJ_PER_CYCLE, rel=1e-6
    )


def test_report_component_scoping(model):
    events = {Ev.RC_ALU_MUL: 10, Ev.FFT_ACCEL_BUTTERFLY: 10}
    vwr2a = model.vwr2a_report(events, 10)
    assert "accel_datapath" not in vwr2a.by_component
    accel = model.accel_report(events, 10)
    assert "datapath" not in accel.by_component
    assert set(vwr2a.by_component) <= set(VWR2A_COMPONENTS)
