"""Compile-time SPM-conflict analysis, auto engine selection, store cache.

Covers the soundness hole closed on top of the compiled engine: kernels
whose columns communicate through the SPM mid-kernel must never run on the
block-granularity scheduler. ``engine="auto"`` (the default) proves seed
kernels conflict-free and keeps them compiled, routes conflicting kernels
to the reference interpreter bit-identically, and forcing
``engine="compiled"`` on a conflicting kernel raises a diagnostic naming
the columns and address ranges. Aborted runs (address faults, budget
overruns) replay cycle-by-cycle so events and column state match the
interpreter exactly. ``store_kernel`` caches encoding and hazard checks
structurally, so re-storing identical kernels is free.
"""

from __future__ import annotations

import pytest

from repro.arch import DEFAULT_PARAMS
from repro.asm.builder import ProgramBuilder
from repro.baselines import lowpass_taps_q15
from repro.core.cgra import Vwr2a
from repro.core.errors import AddressError, ProgramError, SpmConflictError
from repro.engine import conflicts
from repro.isa.fields import DST_VWR_B, VWR_A, Vwr, imm
from repro.isa.lcu import addi, blt, seti
from repro.isa.lsu import ld_srf, ld_vwr, st_srf, st_vwr
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels import KernelRunner, run_intervals
from repro.kernels.fir import build_fir_kernel, plan_fir
from repro.kernels.vector import elementwise_kernel

LINE_WORDS = DEFAULT_PARAMS.line_words


def _producer_consumer(tag: str = "") -> KernelConfig:
    """Column 0 writes SPM line 2 that column 1 reads mid-kernel."""
    b0 = ProgramBuilder(n_rcs=4)
    b0.srf(0, 0)
    b0.srf(1, 2)
    b0.emit(lsu=ld_vwr(Vwr.A, 0))
    b0.emit(rcs=[rc(RCOp.SADD, DST_VWR_B, VWR_A, imm(1))] * 4)
    b0.emit(lsu=st_vwr(Vwr.B, 1))
    b0.exit()
    b1 = ProgramBuilder(n_rcs=4)
    b1.srf(0, 2)
    b1.srf(1, 3)
    b1.emit(lcu=seti(0, 0))
    b1.label("wait")
    b1.emit(lcu=addi(0, 1))
    b1.emit(lcu=blt(0, 20, "wait"))
    b1.emit(lsu=ld_vwr(Vwr.A, 0))
    b1.emit(lsu=st_vwr(Vwr.A, 1))
    b1.exit()
    return KernelConfig(
        name=f"prodcons{tag}", columns={0: b0.build(), 1: b1.build()}
    )


def _faulting_config() -> KernelConfig:
    """Walks ST_VWR off the end of the SPM mid-loop -> AddressError."""
    b = ProgramBuilder(n_rcs=4)
    b.srf(0, DEFAULT_PARAMS.spm_lines - 4)
    b.emit(lcu=seti(0, 0))
    b.label("l")
    b.emit(
        rcs=[rc(RCOp.SADD, DST_VWR_B, VWR_A, imm(7))] * 4, lcu=addi(0, 1)
    )
    b.emit(lsu=st_vwr(Vwr.B, 0, inc=1), lcu=blt(0, 40, "l"))
    b.exit()
    return KernelConfig(name="walk_off_spm", columns={0: b.build()})


def _full_state(sim: Vwr2a, col_index: int = 0) -> dict:
    col = sim.columns[col_index]
    return {
        "events": sim.events.snapshot(),
        "spm": sim.spm.peek_words(0, sim.params.spm_words),
        "vwrs": {v: col.vwr_words(v) for v in col.vwrs},
        "srf": [col.srf.peek(e)
                for e in range(sim.params.srf_entries)],
        "rc_regs": col.rc_regs,
        "rc_out": col.rc_out,
        "lcu_regs": col.lcu_regs,
        "k": col.k,
        "pc": col.pc,
        "steps": col.steps,
        "done": col.done,
    }


class TestAutoSelection:
    def test_conflict_free_seed_kernels_stay_compiled(self):
        sim = Vwr2a()
        assert sim.engine == "auto"
        result = sim.execute(
            elementwise_kernel(sim.params, RCOp.SADD, 512, 0, 4, 8)
        )
        assert result.engine == "compiled"
        assert result.fallback_reason is None
        assert result.spm_conflicts == ()

        taps = lowpass_taps_q15(11, 0.1)
        layout = plan_fir(sim.params, 256, 11)
        fir = build_fir_kernel(
            sim.params, taps, layout, 16, 16 + layout.n_lines
        )
        assert sim.execute(fir).engine == "compiled"

    def test_intervals_kernel_stays_compiled_on_auto_runner(self):
        runner = KernelRunner()  # auto by default
        hi = 4096
        runner.stage_in([3, 20, 41, 60], hi)
        runner.stage_in([1, 11, 33, 52], hi + 8)
        seen = []
        vwr2a = runner.soc.vwr2a
        original = vwr2a.run

        def spy(name, max_cycles=None):
            result = original(name, max_cycles=max_cycles)
            seen.append(result.engine)
            return result

        vwr2a.run = spy
        run_intervals(
            runner,
            insp_spec=(hi, hi + 8, hi + 16, 3),
            exp_spec=(hi + 8 + 1, hi, hi + 24, 3),
        )
        assert seen == ["compiled"]

    def test_conflicting_kernel_falls_back_to_reference(self):
        sim = Vwr2a()
        result = sim.execute(_producer_consumer())
        assert result.engine == "reference"
        assert "column 0" in result.fallback_reason
        assert "column 1" in result.fallback_reason
        assert len(result.spm_conflicts) == 1
        conflict = result.spm_conflicts[0]
        assert conflict.kind == "write-read"
        assert conflict.writer == 0 and conflict.other == 1
        # Line 2: one full line of overlapping words.
        assert conflict.ranges() == ((2 * LINE_WORDS, 3 * LINE_WORDS - 1),)

    def test_auto_fallback_is_bit_identical_to_reference(self):
        states = {}
        for engine in ("reference", "auto"):
            sim = Vwr2a(engine=engine)
            sim.spm.poke_words(0, [(i * 31) % 907 for i in range(512)])
            result = sim.execute(_producer_consumer())
            states[engine] = (
                result.cycles,
                result.config_cycles,
                result.column_steps,
                _full_state(sim, 0),
                _full_state(sim, 1),
            )
        assert states["reference"] == states["auto"]

    def test_word_granular_communication_falls_back_bit_identically(self):
        # Adversarial: col0 streams words into [100..111] with ST_SRF
        # post-increment while col1 reads the same window with LD_SRF and
        # accumulates elsewhere — mid-kernel word-granular communication.
        def config():
            b0 = ProgramBuilder(n_rcs=4)
            b0.srf(0, 100)  # destination walker
            b0.emit(lsu=st_srf(1, 0, inc=1), lcu=seti(0, 0))
            b0.label("p")
            b0.emit(lcu=addi(0, 1))
            b0.emit(lsu=st_srf(1, 0, inc=1), lcu=blt(0, 11, "p"))
            b0.exit()
            b1 = ProgramBuilder(n_rcs=4)
            b1.srf(0, 100)  # source walker over col0's window
            b1.srf(2, 200)  # private output
            b1.emit(lcu=seti(0, 0))
            b1.label("c")
            b1.emit(lsu=ld_srf(1, 0, inc=1), lcu=addi(0, 1))
            b1.emit(lsu=st_srf(1, 2, inc=1), lcu=blt(0, 12, "c"))
            b1.exit()
            return KernelConfig(
                name="word_stream", columns={0: b0.build(), 1: b1.build()}
            )

        states = {}
        for engine in ("reference", "auto"):
            sim = Vwr2a(engine=engine)
            sim.spm.poke_words(0, [(i * 17) % 513 for i in range(256)])
            result = sim.execute(config())
            if engine == "auto":
                assert result.engine == "reference"
                overlap = set()
                for conflict in result.spm_conflicts:
                    overlap.update(conflict.words)
                assert overlap == set(range(100, 112))
            states[engine] = (
                result.cycles,
                result.column_steps,
                _full_state(sim, 0),
                _full_state(sim, 1),
            )
        assert states["reference"] == states["auto"]

    def test_forced_compiled_raises_named_diagnostic(self):
        sim = Vwr2a(engine="compiled")
        with pytest.raises(SpmConflictError) as excinfo:
            sim.execute(_producer_consumer())
        message = str(excinfo.value)
        assert "column 0" in message and "column 1" in message
        assert f"[{2 * LINE_WORDS}..{3 * LINE_WORDS - 1}]" in message
        assert excinfo.value.conflicts[0].words[0] == 2 * LINE_WORDS
        # The refused launch must not have executed a single cycle.
        assert all(col.steps == 0 for col in sim.columns)
        assert sim.spm.peek_words(0, 4 * LINE_WORDS) \
            == [0] * (4 * LINE_WORDS)

    def test_write_write_overlap_is_a_conflict(self):
        columns = {}
        for col in (0, 1):
            b = ProgramBuilder(n_rcs=4)
            b.srf(0, 5)  # both columns store line 5
            b.emit(lsu=st_vwr(Vwr.A, 0))
            b.exit()
            columns[col] = b.build()
        report = conflicts.analyze_columns(columns, DEFAULT_PARAMS)
        assert not report.conflict_free
        assert report.conflicts[0].kind == "write-write"

    def test_shared_reads_are_not_a_conflict(self):
        columns = {}
        for col in (0, 1):
            b = ProgramBuilder(n_rcs=4)
            b.srf(0, 1)       # both columns read line 1
            b.srf(1, 8 + col)  # disjoint writes
            b.emit(lsu=ld_vwr(Vwr.A, 0))
            b.emit(lsu=st_vwr(Vwr.A, 1))
            b.exit()
            columns[col] = b.build()
        report = conflicts.analyze_columns(columns, DEFAULT_PARAMS)
        assert report.conflict_free

    def test_data_dependent_address_widens_to_unbounded(self):
        # Column 0's store address is loaded from the SPM (data-dependent):
        # the analysis must widen it and conservatively fall back.
        b0 = ProgramBuilder(n_rcs=4)
        b0.srf(0, 0)
        b0.emit(lsu=ld_srf(1, 0))       # SRF1 <- SPM[SRF0]: unknown
        b0.emit(lsu=st_vwr(Vwr.A, 1))   # store at unknown line
        b0.exit()
        b1 = ProgramBuilder(n_rcs=4)
        b1.srf(0, 40)
        b1.emit(lsu=ld_vwr(Vwr.A, 0))
        b1.exit()
        columns = {0: b0.build(), 1: b1.build()}
        report = conflicts.analyze_columns(columns, DEFAULT_PARAMS)
        assert not report.conflict_free
        assert report.conflicts[0].unbounded
        footprints = dict(report.footprints)
        assert footprints[0].unbounded_writes

    def test_carried_over_srf_state_is_not_assumed_zero(self):
        # Column.load() does not reset SRF entries outside srf_init (or
        # the LCU registers); a kernel addressing the SPM through an
        # uninitialized entry inherits whatever the previous launch left
        # behind, so the analysis must treat it as unbounded — never
        # "proven conflict-free" with an assumed value.
        b0 = ProgramBuilder(n_rcs=4)
        # No srf_init for entry 5: the store address is carried-over state.
        b0.emit(lsu=st_vwr(Vwr.A, 5))
        b0.exit()
        b1 = ProgramBuilder(n_rcs=4)
        b1.srf(0, 2)
        b1.emit(lcu=seti(0, 0))
        b1.label("w")
        b1.emit(lcu=addi(0, 1))
        b1.emit(lcu=blt(0, 20, "w"))
        b1.emit(lsu=ld_vwr(Vwr.A, 0))
        b1.exit()
        columns = {0: b0.build(), 1: b1.build()}
        report = conflicts.analyze_columns(columns, DEFAULT_PARAMS)
        assert not report.conflict_free
        assert dict(report.footprints)[0].unbounded_writes
        # End to end: a previous launch plants SRF[5] = 2 in column 0,
        # aiming the "uninitialized" store at the line column 1 reads.
        sim = Vwr2a()
        plant = ProgramBuilder(n_rcs=4)
        plant.srf(6, 1000)
        plant.emit(lsu=ld_srf(5, 6))  # SRF[5] <- SPM[1000]
        plant.exit()
        sim.spm.poke_words(1000, [2])
        sim.execute(KernelConfig(name="plant", columns={0: plant.build()}))
        result = sim.execute(
            KernelConfig(name="stale", columns=columns)
        )
        assert result.engine == "reference"

    def test_uninitialized_loop_counter_is_not_assumed_zero(self):
        # The branch counter is never SETI'd: its start value carries over
        # from the previous launch, so the trip count (and therefore the
        # store footprint) cannot be bounded statically.
        b0 = ProgramBuilder(n_rcs=4)
        b0.srf(0, 10)
        b0.label("l")
        b0.emit(lsu=st_srf(1, 0, inc=1), lcu=addi(0, 1))
        b0.emit(lcu=blt(0, 4, "l"))
        b0.exit()
        footprint = b0.build().spm_footprint(DEFAULT_PARAMS)
        # Any carry-in counter value is possible, so every word the
        # post-increment walker can reach must be in the footprint — not
        # just the 5 words a zero-seeded counter would visit.
        assert footprint.unbounded_writes or {10, 500, 8191} \
            <= set(footprint.writes)

    def test_footprint_hooks_on_isa_types(self):
        config = elementwise_kernel(DEFAULT_PARAMS, RCOp.SMUL, 256, 0, 2, 4)
        report = config.spm_conflicts(DEFAULT_PARAMS)
        assert report.conflict_free
        footprint = config.columns[0].spm_footprint(DEFAULT_PARAMS)
        assert footprint.reads and footprint.writes
        assert not footprint.unbounded_reads
        bundle = config.columns[0].bundles[1]  # LD_VWR inside the loop
        access = bundle.spm_access()
        assert access is not None and access[0] == "line"


class TestAnalysisCaching:
    def test_regenerated_kernels_reuse_the_cached_verdict(self):
        sim = Vwr2a()
        config = elementwise_kernel(sim.params, RCOp.SSUB, 512, 0, 4, 8)
        sim.execute(config)
        before = dict(conflicts.ANALYSIS_STATS)
        hits_before = sim.config_mem.stats.analysis_hits
        # A structurally identical, freshly generated config dedupes in
        # the store cache onto the stored config object, whose stamped
        # verdict makes the launch a plain attribute read: zero new
        # footprint computations, zero report-memo lookups.
        sim.execute(elementwise_kernel(sim.params, RCOp.SSUB, 512, 0, 4, 8))
        after = conflicts.ANALYSIS_STATS
        assert after["footprint_misses"] == before["footprint_misses"]
        assert after["report_misses"] == before["report_misses"]
        assert sim.config_mem.stats.analysis_hits > hits_before
        assert sim.config_mem.stats.analysis_misses == 1

    def test_report_memo_backs_fresh_config_objects(self):
        # The conflicts-module memo still serves analyses that bypass the
        # runner-level verdict cache (fresh KernelConfig objects analyzed
        # directly, e.g. by a different platform instance).
        sim = Vwr2a()
        config = elementwise_kernel(sim.params, RCOp.SSUB, 512, 0, 4, 8)
        sim.store_kernel(config)  # stamps the structural fingerprints
        conflicts.analyze_columns(config.columns, sim.params)
        before = dict(conflicts.ANALYSIS_STATS)
        regenerated = elementwise_kernel(sim.params, RCOp.SSUB, 512, 0, 4, 8)
        sim.store_kernel(regenerated)
        conflicts.analyze_columns(regenerated.columns, sim.params)
        after = conflicts.ANALYSIS_STATS
        assert after["footprint_misses"] == before["footprint_misses"]
        assert after["report_misses"] == before["report_misses"]
        assert after["report_hits"] > before["report_hits"]

    def test_repeated_load_kernel_does_not_reanalyze(self):
        sim = Vwr2a()
        config = elementwise_kernel(sim.params, RCOp.SADD, 256, 0, 2, 4)
        sim.store_kernel(config)
        sim.load_kernel(config.name)
        before = dict(conflicts.ANALYSIS_STATS)
        for _ in range(3):
            sim.load_kernel(config.name)
        assert conflicts.ANALYSIS_STATS["footprint_misses"] \
            == before["footprint_misses"]
        assert conflicts.ANALYSIS_STATS["report_misses"] \
            == before["report_misses"]


class TestAbortAccounting:
    """docs/engine.md caveat closed: aborted runs fold cycle-by-cycle."""

    @pytest.mark.parametrize("engine", ("compiled", "auto"))
    def test_address_fault_matches_reference_exactly(self, engine):
        states = {}
        for name in ("reference", engine):
            sim = Vwr2a(engine=name)
            sim.spm.poke_words(0, [i % 1000 for i in range(512)])
            with pytest.raises(AddressError) as excinfo:
                sim.execute(_faulting_config())
            states[name] = (str(excinfo.value), _full_state(sim))
        assert states["reference"] == states[engine]

    def test_budget_overrun_matches_reference_mid_block(self):
        # max_cycles falls inside a block: the reference interpreter stops
        # mid-block; the compiled engine must replay to the same point.
        states = {}
        for engine in ("reference", "compiled"):
            sim = Vwr2a(engine=engine)
            b = ProgramBuilder(n_rcs=4)
            b.emit(lcu=seti(0, 0))
            b.label("s")
            b.emit(lcu=addi(0, 1))
            b.emit(lcu=blt(0, 60000, "s"))
            b.exit()
            sim.store_kernel(
                KernelConfig(name="spin", columns={0: b.build()})
            )
            with pytest.raises(ProgramError, match="exceeded 101 cycles"):
                sim.run("spin", max_cycles=101)
            states[engine] = _full_state(sim)
        assert states["reference"] == states["compiled"]

    def test_multi_column_fault_matches_reference(self):
        # Column 0 faults while column 1 is still looping; the replay must
        # reproduce the interpreter's lock-step partial progress of both.
        def config():
            b0 = ProgramBuilder(n_rcs=4)
            b0.srf(0, DEFAULT_PARAMS.spm_lines - 2)
            b0.emit(lcu=seti(0, 0))
            b0.label("l")
            b0.emit(lsu=st_vwr(Vwr.B, 0, inc=1), lcu=addi(0, 1))
            b0.emit(lcu=blt(0, 30, "l"))
            b0.exit()
            b1 = ProgramBuilder(n_rcs=4)
            b1.srf(0, 4)
            b1.emit(lcu=seti(0, 0))
            b1.label("m")
            b1.emit(
                rcs=[rc(RCOp.SADD, DST_VWR_B, VWR_A, imm(3))] * 4,
                lcu=addi(0, 1),
            )
            b1.emit(lcu=blt(0, 200, "m"))
            b1.exit()
            return KernelConfig(
                name="fault2col", columns={0: b0.build(), 1: b1.build()}
            )

        states = {}
        for engine in ("reference", "compiled"):
            sim = Vwr2a(engine=engine)
            with pytest.raises(AddressError) as excinfo:
                sim.execute(config())
            states[engine] = (
                str(excinfo.value),
                _full_state(sim, 0),
                _full_state(sim, 1),
            )
        assert states["reference"] == states["compiled"]


class TestStoreCache:
    def test_repeated_store_skips_encode_and_hazard_checks(self):
        sim = Vwr2a()
        config = elementwise_kernel(
            sim.params, RCOp.SMAX, 256, 1, 3, 5, name="cache_probe"
        )
        sim.store_kernel(config)
        stats = sim.config_mem.stats
        encode_misses = stats.encode_misses
        hazard_misses = stats.hazard_misses
        # Regenerated identical kernel (fresh objects, same code): zero
        # re-encoding, zero hazard re-checks.
        regenerated = elementwise_kernel(
            sim.params, RCOp.SMAX, 256, 1, 3, 5, name="cache_probe"
        )
        sim.store_kernel(regenerated)
        assert stats.encode_misses == encode_misses
        assert stats.hazard_misses == hazard_misses
        assert stats.dedup_hits >= 1
        # The fresh programs still get fingerprints for the compile memo.
        for program in regenerated.columns.values():
            assert program._fingerprint is not None

    def test_same_code_different_srf_init_reencodes_nothing(self):
        sim = Vwr2a()
        taps = lowpass_taps_q15(11, 0.1)
        layout = plan_fir(sim.params, 256, 11)
        sim.store_kernel(
            build_fir_kernel(sim.params, taps, layout, 0, layout.n_lines)
        )
        stats = sim.config_mem.stats
        encode_misses = stats.encode_misses
        hazard_misses = stats.hazard_misses
        encode_hits = stats.encode_hits
        # Same bundles, different baked addresses: not a dedup hit (the
        # stored kernel must change), but encode + hazards still cache.
        second = build_fir_kernel(
            sim.params, taps, layout, 8, 8 + layout.n_lines
        )
        sim.store_kernel(second)
        assert stats.encode_misses == encode_misses
        assert stats.hazard_misses == hazard_misses
        assert stats.encode_hits == encode_hits + len(second.columns)

    def test_double_store_charges_config_cycles_once_per_launch(self):
        # The historical double-store flow: runner.store + Vwr2a.execute
        # both store; the launch must charge the configuration load once.
        runner = KernelRunner()
        vwr2a = runner.soc.vwr2a
        config = elementwise_kernel(
            vwr2a.params, RCOp.SADD, 256, 0, 2, 4, name="double_store"
        )
        runner.store(config)
        snapshot = runner.events_snapshot()
        result = vwr2a.execute(config)  # second store + launch
        assert vwr2a.config_mem.stats.dedup_hits >= 1
        expected = config.load_cycles(vwr2a.params)
        assert result.config_cycles == expected
        diff = runner.events_since(snapshot)
        total_words = sum(
            len(p.bundles) for p in config.columns.values()
        )
        # CONFIG_WORD events tick exactly once per configuration word of
        # exactly one install.
        assert diff.get("config.word", 0) == total_words

    def test_store_then_launch_ledger_charges_once(self):
        runner = KernelRunner()
        config = elementwise_kernel(
            runner.soc.params, RCOp.SSUB, 256, 0, 2, 4, name="ledger"
        )
        runner.store(config)
        runner.store(config)  # idempotent re-store
        result = runner.launch(config.name)
        assert result.config_cycles \
            == config.load_cycles(runner.soc.params)
