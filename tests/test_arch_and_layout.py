"""Architecture parameters, SPM allocator, FIR layout, vector planning."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import (
    DEFAULT_PARAMS,
    DEFAULT_SPEC,
    ArchParams,
    ArchSpec,
    EnergyScaling,
    SocParams,
)
from repro.core.errors import ConfigurationError
from repro.kernels.layout import SpmAllocator
from repro.kernels.fir import plan_fir
from repro.kernels.vector import plan_split


class TestArchParams:
    def test_paper_configuration(self):
        p = DEFAULT_PARAMS
        assert p.n_columns == 2
        assert p.rcs_per_column == 4
        assert p.n_vwrs == 3
        assert p.vwr_bits == 4096
        assert p.slice_words == 32
        assert p.spm_bytes == 32 * 1024
        assert p.spm_lines == 64
        assert p.line_words == p.vwr_words == 128
        assert p.program_words == 64
        assert p.srf_entries == 8
        assert p.cycle_s == pytest.approx(12.5e-9)

    def test_small_variant(self):
        p = ArchParams(vwr_words=32, spm_bytes=4096)
        assert p.slice_words == 8
        assert p.spm_lines == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ArchParams(vwr_words=100)       # not divisible by 4 slices... 100/4=25 not pow2
        with pytest.raises(ValueError):
            ArchParams(n_columns=0)
        with pytest.raises(ValueError):
            ArchParams(spm_bytes=1000)

    def test_soc_params(self):
        s = SocParams()
        assert s.sram_bank_bytes == 32 * 1024
        assert s.cycle_s == pytest.approx(12.5e-9)

    def test_rejects_slice_beyond_mxcu_k_field(self):
        # slice_words = 64 cannot be indexed by the 5-bit MXCU k field.
        with pytest.raises(ValueError, match="5-bit k field"):
            ArchParams(rcs_per_column=2)
        # Scaling vwr_words with the RC count keeps the slice legal.
        assert ArchParams(rcs_per_column=2, vwr_words=64).slice_words == 32


#: Small valid geometry grid for the spec property tests: every combo
#: keeps slices power-of-two, <= 32 words, and whole SPM lines.
_spec_strategy = st.builds(
    lambda cols, rcs_exp, slice_exp, spm_exp, srf, name: ArchSpec(
        arch=ArchParams(
            n_columns=cols,
            rcs_per_column=2 ** rcs_exp,
            vwr_words=2 ** (rcs_exp + slice_exp),
            spm_bytes=2 ** spm_exp * 1024,
            srf_entries=srf,
        ),
        name=name,
    ),
    cols=st.integers(1, 4),
    rcs_exp=st.integers(0, 3),
    slice_exp=st.integers(2, 5),
    spm_exp=st.integers(4, 7),
    srf=st.sampled_from([8, 16]),
    name=st.sampled_from(["", "a", "point-1"]),
)


class TestArchSpec:
    def test_default_is_the_paper_point(self):
        assert DEFAULT_SPEC.arch == DEFAULT_PARAMS
        assert DEFAULT_SPEC.name == "paper"
        assert DEFAULT_SPEC == ArchSpec()  # name excluded from equality

    def test_rejects_wrong_bundle_types(self):
        with pytest.raises(ValueError, match="must be ArchParams"):
            ArchSpec(arch={"n_columns": 2})
        with pytest.raises(ValueError, match="must be SocParams"):
            ArchSpec(soc=42)
        with pytest.raises(ValueError, match="must be EnergyScaling"):
            ArchSpec(energy={"spm_capacity_exp": 0.5})

    def test_rejects_clock_disagreement(self):
        with pytest.raises(ValueError, match="one clock domain"):
            ArchSpec(arch=ArchParams(clock_hz=40e6))

    def test_rejects_bad_energy_exponent(self):
        with pytest.raises(ValueError, match="spm_capacity_exp"):
            EnergyScaling(spm_capacity_exp=-1.0)
        with pytest.raises(ValueError, match="vwr_bits_exp"):
            EnergyScaling(vwr_bits_exp=100.0)

    def test_vary_revalidates(self):
        spec = DEFAULT_SPEC.vary("narrow", vwr_words=64)
        assert spec.name == "narrow"
        assert spec.arch.vwr_words == 64
        assert spec.soc == DEFAULT_SPEC.soc
        with pytest.raises(ValueError):
            DEFAULT_SPEC.vary("bad", rcs_per_column=3)

    def test_name_does_not_split_caches(self):
        renamed = DEFAULT_SPEC.vary("other-label")
        assert renamed == DEFAULT_SPEC
        assert renamed.fingerprint == DEFAULT_SPEC.fingerprint
        assert hash(renamed) == hash(DEFAULT_SPEC)

    def test_describe_mentions_geometry_and_fingerprint(self):
        text = DEFAULT_SPEC.describe()
        assert "2x4rc" in text and "spm32K" in text
        assert DEFAULT_SPEC.fingerprint in text

    @given(_spec_strategy)
    @settings(max_examples=50, deadline=None)
    def test_pickle_round_trip_and_fingerprint_stability(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint
        # Rebuilding from scratch (no shared objects) agrees too.
        rebuilt = ArchSpec(
            arch=ArchParams(**{
                f.name: getattr(spec.arch, f.name)
                for f in spec.arch.__dataclass_fields__.values()
            }),
            soc=spec.soc,
            energy=spec.energy,
        )
        assert rebuilt.fingerprint == spec.fingerprint
        # Distinct geometries never share a fingerprint with the default.
        if spec.arch != DEFAULT_SPEC.arch:
            assert spec.fingerprint != DEFAULT_SPEC.fingerprint


class TestSpmAllocator:
    def test_line_rounding_and_addresses(self):
        alloc = SpmAllocator(DEFAULT_PARAMS)
        r1 = alloc.alloc("a", 1)          # rounds to one line
        r2 = alloc.alloc("b", 129)        # rounds to two lines
        assert r1.n_lines == 1 and r2.n_lines == 2
        assert r2.line == 1
        assert r2.word == 128
        assert r2.line_at(1) == 2
        assert alloc.used_lines == 3
        assert alloc.get("a") is r1

    def test_overflow_and_duplicates(self):
        alloc = SpmAllocator(DEFAULT_PARAMS)
        alloc.alloc_lines("big", 64)
        with pytest.raises(ConfigurationError, match="overflow"):
            alloc.alloc("more", 1)
        alloc2 = SpmAllocator(DEFAULT_PARAMS)
        alloc2.alloc("x", 1)
        with pytest.raises(ConfigurationError, match="already"):
            alloc2.alloc("x", 1)

    def test_region_bounds(self):
        alloc = SpmAllocator(DEFAULT_PARAMS)
        r = alloc.alloc_lines("r", 2)
        with pytest.raises(ConfigurationError):
            r.line_at(2)


class TestFirLayoutProperties:
    @given(st.integers(16, 3000), st.integers(2, 20))
    @settings(max_examples=50, deadline=None)
    def test_gather_orders_consistent(self, n, taps):
        layout = plan_fir(DEFAULT_PARAMS, n, taps)
        assert layout.outputs_per_slice % 2 == 0
        assert layout.outputs_per_slice + layout.halo <= 32
        # Every output has a unique sparse SPM position.
        out = layout.gather_out_order(DEFAULT_PARAMS)
        assert len(out) == n
        assert len(set(out)) == n
        # Every input-layout position maps inside the padded input.
        order = layout.gather_in_order(DEFAULT_PARAMS)
        assert len(order) == layout.n_lines * 128
        assert min(order) >= 0

    def test_too_many_taps(self):
        with pytest.raises(ConfigurationError):
            plan_fir(DEFAULT_PARAMS, 100, 40)


class TestVectorPlan:
    def test_split_even(self):
        plan = plan_split(DEFAULT_PARAMS, 512)
        assert plan.n_lines == 4
        assert plan.lines_per_column == {0: (0, 2), 1: (2, 2)}

    def test_split_odd_lines(self):
        plan = plan_split(DEFAULT_PARAMS, 384)
        assert plan.lines_per_column == {0: (0, 2), 1: (2, 1)}

    def test_single_line_uses_one_column(self):
        plan = plan_split(DEFAULT_PARAMS, 128)
        assert plan.lines_per_column == {0: (0, 1)}

    def test_rejects_partial_lines(self):
        with pytest.raises(ConfigurationError):
            plan_split(DEFAULT_PARAMS, 100)
