"""Architecture parameters, SPM allocator, FIR layout, vector planning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_PARAMS, ArchParams, SocParams
from repro.core.errors import ConfigurationError
from repro.kernels.layout import SpmAllocator
from repro.kernels.fir import plan_fir
from repro.kernels.vector import plan_split


class TestArchParams:
    def test_paper_configuration(self):
        p = DEFAULT_PARAMS
        assert p.n_columns == 2
        assert p.rcs_per_column == 4
        assert p.n_vwrs == 3
        assert p.vwr_bits == 4096
        assert p.slice_words == 32
        assert p.spm_bytes == 32 * 1024
        assert p.spm_lines == 64
        assert p.line_words == p.vwr_words == 128
        assert p.program_words == 64
        assert p.srf_entries == 8
        assert p.cycle_s == pytest.approx(12.5e-9)

    def test_small_variant(self):
        p = ArchParams(vwr_words=32, spm_bytes=4096)
        assert p.slice_words == 8
        assert p.spm_lines == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ArchParams(vwr_words=100)       # not divisible by 4 slices... 100/4=25 not pow2
        with pytest.raises(ValueError):
            ArchParams(n_columns=0)
        with pytest.raises(ValueError):
            ArchParams(spm_bytes=1000)

    def test_soc_params(self):
        s = SocParams()
        assert s.sram_bank_bytes == 32 * 1024
        assert s.cycle_s == pytest.approx(12.5e-9)


class TestSpmAllocator:
    def test_line_rounding_and_addresses(self):
        alloc = SpmAllocator(DEFAULT_PARAMS)
        r1 = alloc.alloc("a", 1)          # rounds to one line
        r2 = alloc.alloc("b", 129)        # rounds to two lines
        assert r1.n_lines == 1 and r2.n_lines == 2
        assert r2.line == 1
        assert r2.word == 128
        assert r2.line_at(1) == 2
        assert alloc.used_lines == 3
        assert alloc.get("a") is r1

    def test_overflow_and_duplicates(self):
        alloc = SpmAllocator(DEFAULT_PARAMS)
        alloc.alloc_lines("big", 64)
        with pytest.raises(ConfigurationError, match="overflow"):
            alloc.alloc("more", 1)
        alloc2 = SpmAllocator(DEFAULT_PARAMS)
        alloc2.alloc("x", 1)
        with pytest.raises(ConfigurationError, match="already"):
            alloc2.alloc("x", 1)

    def test_region_bounds(self):
        alloc = SpmAllocator(DEFAULT_PARAMS)
        r = alloc.alloc_lines("r", 2)
        with pytest.raises(ConfigurationError):
            r.line_at(2)


class TestFirLayoutProperties:
    @given(st.integers(16, 3000), st.integers(2, 20))
    @settings(max_examples=50, deadline=None)
    def test_gather_orders_consistent(self, n, taps):
        layout = plan_fir(DEFAULT_PARAMS, n, taps)
        assert layout.outputs_per_slice % 2 == 0
        assert layout.outputs_per_slice + layout.halo <= 32
        # Every output has a unique sparse SPM position.
        out = layout.gather_out_order(DEFAULT_PARAMS)
        assert len(out) == n
        assert len(set(out)) == n
        # Every input-layout position maps inside the padded input.
        order = layout.gather_in_order(DEFAULT_PARAMS)
        assert len(order) == layout.n_lines * 128
        assert min(order) >= 0

    def test_too_many_taps(self):
        with pytest.raises(ConfigurationError):
            plan_fir(DEFAULT_PARAMS, 100, 40)


class TestVectorPlan:
    def test_split_even(self):
        plan = plan_split(DEFAULT_PARAMS, 512)
        assert plan.n_lines == 4
        assert plan.lines_per_column == {0: (0, 2), 1: (2, 2)}

    def test_split_odd_lines(self):
        plan = plan_split(DEFAULT_PARAMS, 384)
        assert plan.lines_per_column == {0: (0, 2), 1: (2, 1)}

    def test_single_line_uses_one_column(self):
        plan = plan_split(DEFAULT_PARAMS, 128)
        assert plan.lines_per_column == {0: (0, 1)}

    def test_rejects_partial_lines(self):
        with pytest.raises(ConfigurationError):
            plan_split(DEFAULT_PARAMS, 100)
