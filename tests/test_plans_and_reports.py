"""FFT plan properties, kernel program budgets, and report rendering."""

import pytest

from repro.arch import DEFAULT_PARAMS
from repro.baselines import lowpass_taps_q15
from repro.core.errors import ConfigurationError
from repro.energy import default_model, render_table3, table3_breakdown
from repro.kernels.delineation import build_delineation_kernel
from repro.kernels.fft import (
    FftPlan,
    master_twiddles,
    stage_exponents,
    stage_table,
    stage_table_lines,
)
from repro.kernels.fir import build_fir_kernel, plan_fir


class TestTwiddleMath:
    @pytest.mark.parametrize("n", [16, 256, 1024])
    def test_master_table_unit_circle(self, n):
        re, im = master_twiddles(n)
        assert re[0] == 1 << 15 and im[0] == 0
        for r, i in zip(re, im):
            assert abs(r * r + i * i - (1 << 30)) < (1 << 23)

    def test_stage_exponents_run_structure(self):
        n, bits = 64, 6
        for t in range(bits):
            exps = stage_exponents(n, t)
            run = 1 << (bits - 1 - t)
            for k in range(0, n // 2, run):
                assert len(set(exps[k:k + run])) == 1

    def test_stage_table_lines_interleaving(self):
        words = stage_table_lines(DEFAULT_PARAMS, 512, 8)
        wr, wi = stage_table(512, 8)
        assert words[:128] == wr[:128]
        assert words[128:256] == wi[:128]


class TestFftPlan:
    def test_512_resident_layout_fits(self):
        plan = FftPlan(n=512, params=DEFAULT_PARAMS, resident_tables=True)
        assert plan.batches == 2
        end = plan.scratch_line_of(1) + 6
        assert end <= DEFAULT_PARAMS.spm_lines
        assert len(plan.vector_stages) == 5

    def test_1024_requires_streaming(self):
        with pytest.raises(ConfigurationError):
            FftPlan(n=1024, params=DEFAULT_PARAMS, resident_tables=True)
        plan = FftPlan(n=1024, params=DEFAULT_PARAMS, resident_tables=False)
        assert plan.batches == 4

    def test_ping_pong_buffers(self):
        plan = FftPlan(n=512, params=DEFAULT_PARAMS)
        s0 = plan.buffers_for_stage(0)
        s1 = plan.buffers_for_stage(1)
        assert s0[2] == s1[0]   # stage 1 reads what stage 0 wrote
        # 9 stages -> result ends in the Y buffer.
        assert plan.result_lines == (plan.yr_line, plan.yi_line)

    def test_imm_twiddles_match_table(self):
        plan = FftPlan(n=512, params=DEFAULT_PARAMS)
        t = 0   # earliest stage: all twiddles are W^0
        imms = plan.imm_twiddles_for(t, 0)
        assert all(w == (1 << 15, 0) for w in imms)


class TestProgramBudgets:
    """Every generated program must fit the 64-entry program memory."""

    def test_fir_program_size(self):
        layout = plan_fir(DEFAULT_PARAMS, 512, 11)
        cfg = build_fir_kernel(
            DEFAULT_PARAMS, lowpass_taps_q15(11, 0.1), layout, 0, 10
        )
        for program in cfg.columns.values():
            assert len(program) <= DEFAULT_PARAMS.program_words

    def test_fft_batch_program_size(self):
        from repro.kernels.fft import BatchAddresses, build_batch_kernel

        addr = BatchAddresses(
            xr_pair=0, xi_pair=4, w=16, yr_lo=8, yr_hi=9,
            yi_lo=12, yi_hi=13, scratch=52,
        )
        cfg = build_batch_kernel(DEFAULT_PARAMS, {0: addr}, "b")
        assert len(cfg.columns[0]) <= DEFAULT_PARAMS.program_words

    def test_delineation_program_size(self):
        cfg = build_delineation_kernel(
            DEFAULT_PARAMS, 512, 2000, 0, 4096, 4610
        )
        assert len(cfg.columns[0]) <= DEFAULT_PARAMS.program_words

    def test_delineation_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            build_delineation_kernel(DEFAULT_PARAMS, 512, 0, 0, 100, 200)


class TestReportRendering:
    def test_table3_render_single_and_dual(self):
        model = default_model()
        from repro.core.events import Ev

        report = model.vwr2a_report({Ev.RC_ALU_MUL: 100}, 1000)
        rows = table3_breakdown(report)
        single = render_table3(rows, title="t")
        assert "Datapath" in single and "Total" in single
        dual = render_table3(rows, rows)
        assert "ratio" in dual

    def test_breakdown_shares_sum_to_one(self):
        model = default_model()
        from repro.core.events import Ev

        report = model.vwr2a_report(
            {Ev.RC_ALU_ADD: 500, Ev.SPM_WIDE_READ: 20}, 2000
        )
        rows = table3_breakdown(report)
        total_share = sum(
            row["share"] for label, row in rows.items() if label != "Total"
        )
        assert total_share == pytest.approx(1.0)
