"""Parallel multi-instance serving (``repro.serve.pool``) + checkpoints.

The load-bearing property, extended from ``tests/test_serve.py``: a
:class:`PoolScheduler` sharding a stream across N worker processes (each
its own simulated platform) produces a :class:`StreamReport`
**bit-identical** to the single-process :class:`StreamScheduler` —
cycles, events, energy, per-engine decisions, features and labels —
including streams whose kernels trigger the reference-engine fallback
mid-stream, and runs that are killed and resumed from a
:class:`StreamCheckpoint` (with a different worker count, or across the
pool/single-process boundary). On top of that: the mergeable report
arithmetic, checkpoint persistence semantics, pooled parameter sweeps
and the pickling contract of the worker spec.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

import pytest

from repro.app import WINDOW, AppParams, respiration_signal
from repro.app.mbiotracker import window_pipeline
from repro.core.errors import ConfigurationError
from repro.isa.rc import RCOp
from repro.kernels import KernelRunner, RunnerFactory, elementwise_kernel
from repro.serve import (
    CheckpointState,
    ParameterSweep,
    PoolScheduler,
    PoolWorkerError,
    StreamCheckpoint,
    StreamReport,
    StreamScheduler,
    SweepCase,
    WindowResult,
    WindowStream,
    serve_trace,
)
from test_serve import _conflicting_kernel

N_WINDOWS = 4


@pytest.fixture(scope="module")
def trace():
    return respiration_signal(N_WINDOWS * WINDOW)


@pytest.fixture(scope="module")
def stream(trace):
    return WindowStream(trace, window=WINDOW)


@pytest.fixture(scope="module")
def single(stream):
    return StreamScheduler(config="cpu_vwr2a", energy_model=True).run(stream)


@pytest.fixture(scope="module")
def pooled(stream):
    return PoolScheduler(
        config="cpu_vwr2a", workers=4, energy_model=True
    ).run(stream)


def assert_windows_bit_identical(left, right):
    """Window-for-window equality of everything simulated."""
    assert [w.index for w in left.windows] == [w.index for w in right.windows]
    for a, b in zip(left.windows, right.windows):
        assert a.start == b.start
        assert a.cycles == b.cycles
        assert a.events == b.events
        assert a.energy_uj == b.energy_uj
        assert a.staging_in_cycles == b.staging_in_cycles
        assert a.staging_out_cycles == b.staging_out_cycles
        assert [r.engine for r in a.launches] \
            == [r.engine for r in b.launches]
        assert [r.name for r in a.launches] == [r.name for r in b.launches]
        assert [r.cycles for r in a.launches] \
            == [r.cycles for r in b.launches]
        if hasattr(a.app, "features"):
            assert a.app.features == b.app.features
            assert a.app.label == b.app.label
            for name, step in a.app.steps.items():
                assert b.app.steps[name].cycles == step.cycles
                assert b.app.steps[name].events == step.events
        else:
            assert a.app == b.app


class TestPoolBitIdentity:
    """PoolScheduler(workers=4) == StreamScheduler, exactly."""

    def test_per_window_results_match(self, single, pooled):
        assert pooled.n_windows == N_WINDOWS
        assert_windows_bit_identical(single, pooled)

    def test_aggregates_match(self, single, pooled):
        assert pooled.total_cycles == single.total_cycles
        assert pooled.total_events == single.total_events
        assert pooled.total_energy_uj == single.total_energy_uj
        assert pooled.engine_counts == single.engine_counts
        assert pooled.fallbacks == single.fallbacks
        assert pooled.labels == single.labels
        assert pooled.overlap_saved_cycles == single.overlap_saved_cycles
        assert pooled.pipelined_total_cycles \
            == single.pipelined_total_cycles

    def test_report_shape_matches(self, single, pooled):
        assert pooled.config == single.config == "cpu_vwr2a"
        assert pooled.engine == single.engine == "auto"
        assert pooled.window == WINDOW and pooled.hop == WINDOW
        assert pooled.double_buffered
        assert pooled.windows_per_second > 0
        assert "windows" in pooled.summary()

    def test_store_stats_total_worker_cold_stores(self, single, pooled):
        # Each worker pays its own cold encodes; the merged counters
        # honestly total the work done, they are not required to match
        # the single-runner amortization.
        assert pooled.store_stats["stores"] == single.store_stats["stores"]
        assert pooled.store_stats["encode_misses"] \
            >= single.store_stats["encode_misses"]

    def test_single_worker_pool_degenerates_cleanly(self, stream, single):
        one = PoolScheduler(
            config="cpu_vwr2a", workers=1, energy_model=True
        ).run(stream)
        assert_windows_bit_identical(single, one)
        # One worker == one runner: the same stores flow through it
        # (hit/miss splits depend on process-wide structural memos the
        # forked worker inherits, so only the store count is pinned).
        assert one.store_stats["stores"] == single.store_stats["stores"]

    def test_serve_trace_workers_path(self, trace, single):
        report = serve_trace(trace, "cpu_vwr2a", workers=2)
        assert_windows_bit_identical(single, report)
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            serve_trace(
                trace, "cpu_vwr2a", workers=2, runner=KernelRunner()
            )

    def test_rejects_degenerate_pools(self, trace):
        with pytest.raises(ConfigurationError):
            PoolScheduler(workers=0)
        with pytest.raises(ConfigurationError):
            PoolScheduler(workers=2, prefetch=0)
        with pytest.raises(ConfigurationError, match="at least one"):
            serve_trace(trace, "cpu_vwr2a", workers=0)


# -- mid-stream reference-engine fallback ------------------------------------

PARITY_WINDOW = 128
N_PARITY_WINDOWS = 6


@dataclass(frozen=True)
class ParityEnginePipeline:
    """Odd-index windows launch an SPM-communicating kernel.

    The window index is read from the trace itself (``samples[0]``), so
    the behaviour is identical however the windows are sharded — the
    auto engine must fall back to the reference interpreter for exactly
    the odd windows, in every worker.
    """

    config: str = "custom"

    def __call__(self, runner, samples):
        # Stage everything the kernels read and collect only lines they
        # write: sharded pipelines must not rely on SPM state left over
        # from other windows (each worker owns a fresh platform).
        index = samples[0]
        line_words = runner.soc.params.line_words
        runner.stage_in(samples, 0)
        runner.stage_in(samples, line_words)
        if index % 2:
            config = _conflicting_kernel()
            out_line = 3  # column 1's copy of the communicated line
        else:
            config = elementwise_kernel(
                runner.soc.params, RCOp.SADD, PARITY_WINDOW,
                a_line=0, b_line=1, c_line=4, name="pool_vadd",
            )
            out_line = 4
        result = runner.execute(config)
        out, _ = runner.stage_out(out_line * line_words, line_words)
        # Probe one word per RC slice: the conflicting kernel writes a
        # single element per RC, the rest of its line is stale SPM.
        slice_words = runner.soc.params.slice_words
        probe = tuple(out[i * slice_words] for i in range(4))
        return {"probe": probe, "kernel": result.name}


@pytest.fixture(scope="module")
def parity_stream():
    trace = respiration_signal(N_PARITY_WINDOWS * PARITY_WINDOW)
    trace = list(trace)
    for i in range(N_PARITY_WINDOWS):
        trace[i * PARITY_WINDOW] = i  # stamp the window index
    return WindowStream(trace, window=PARITY_WINDOW)


class TestFallbackMidStream:
    def test_pool_matches_single_with_mixed_engines(self, parity_stream):
        single = StreamScheduler(pipeline=ParityEnginePipeline()) \
            .run(parity_stream)
        pooled = PoolScheduler(
            pipeline=ParityEnginePipeline(), workers=4
        ).run(parity_stream)
        assert_windows_bit_identical(single, pooled)
        counts = pooled.engine_counts
        assert counts["reference"] == N_PARITY_WINDOWS // 2
        assert counts["compiled"] \
            == N_PARITY_WINDOWS - counts["reference"]
        for win in pooled.windows:
            engines = {r.engine for r in win.launches}
            assert engines == \
                ({"reference"} if win.index % 2 else {"compiled"})
        assert pooled.fallbacks == single.fallbacks
        window_index, kernel, reason = pooled.fallbacks[0]
        assert window_index == 1
        assert kernel == "serve_prodcons"
        assert "column 0" in reason and "column 1" in reason


# -- checkpointing -----------------------------------------------------------


@dataclass(frozen=True)
class FlakyPipeline:
    """Delegates to the application pipeline; injects one failure.

    Raises on the window whose samples match ``fail_samples`` while the
    ``marker`` file exists — the test's stand-in for a mid-run kill that
    is deterministic under any sharding. Removing the marker "restarts
    the host" and lets the resume complete.
    """

    marker: str
    fail_samples: tuple
    inner: object = field(default_factory=lambda: window_pipeline("cpu_vwr2a"))

    @property
    def config(self):
        return self.inner.config

    def __call__(self, runner, samples):
        if tuple(samples) == self.fail_samples and os.path.exists(self.marker):
            raise RuntimeError("injected mid-stream kill")
        return self.inner(runner, samples)


class TestCheckpointResume:
    @pytest.fixture()
    def flaky(self, trace, tmp_path):
        marker = tmp_path / "armed"
        marker.touch()
        fail_samples = tuple(trace[2 * WINDOW:3 * WINDOW])
        return FlakyPipeline(str(marker), fail_samples), marker

    def test_kill_and_resume_is_bit_identical(
            self, stream, single, flaky, tmp_path):
        pipeline, marker = flaky
        path = tmp_path / "stream.ckpt"
        checkpoint = StreamCheckpoint(path, every=1)
        with pytest.raises(PoolWorkerError) as excinfo:
            PoolScheduler(pipeline=pipeline, workers=2,
                          energy_model=True).run(stream, checkpoint)
        assert excinfo.value.window_index == 2
        assert "injected mid-stream kill" in excinfo.value.details

        # The abort flushed every completed window to disk.
        state = checkpoint.load()
        assert 2 not in state.results
        assert 0 < state.n_done < N_WINDOWS
        assert not state.complete

        marker.unlink()  # "restart the host"
        resumed = PoolScheduler(
            pipeline=pipeline, workers=3, energy_model=True,  # other N
        ).run(stream, StreamCheckpoint(path, every=1))
        assert_windows_bit_identical(single, resumed)
        assert resumed.total_energy_uj == single.total_energy_uj
        # The final checkpoint now holds the complete stream...
        assert checkpoint.load().complete
        # ...so a further resume rebuilds the report with no serving.
        replay = PoolScheduler(pipeline=pipeline, workers=2,
                               energy_model=True) \
            .run(stream, StreamCheckpoint(path))
        assert_windows_bit_identical(single, replay)

    def test_single_process_resumes_a_pool_checkpoint(
            self, stream, single, flaky, tmp_path):
        pipeline, marker = flaky
        path = tmp_path / "cross.ckpt"
        with pytest.raises(PoolWorkerError):
            PoolScheduler(pipeline=pipeline, workers=2,
                          energy_model=True).run(
                stream, StreamCheckpoint(path, every=1))
        marker.unlink()
        resumed = StreamScheduler(pipeline=pipeline, energy_model=True) \
            .run(stream, checkpoint=StreamCheckpoint(path, every=1))
        assert_windows_bit_identical(single, resumed)

    def test_stream_scheduler_checkpoints_and_resumes(
            self, stream, single, flaky, tmp_path):
        pipeline, marker = flaky
        path = tmp_path / "single.ckpt"
        with pytest.raises(RuntimeError, match="injected"):
            # Cadence far beyond the stream: only the failure-path
            # flush can have written the file.
            StreamScheduler(pipeline=pipeline, energy_model=True).run(
                stream, checkpoint=StreamCheckpoint(path, every=100))
        state = StreamCheckpoint(path).load()
        assert sorted(state.results) == [0, 1]  # sequential cursor
        marker.unlink()
        resumed = PoolScheduler(pipeline=pipeline, workers=2,
                                energy_model=True) \
            .run(stream, StreamCheckpoint(path, every=1))
        assert_windows_bit_identical(single, resumed)

    def test_fingerprint_mismatch_refuses_to_resume(self, stream, tmp_path):
        path = tmp_path / "wrong.ckpt"
        StreamScheduler(config="cpu_vwr2a").run(
            WindowStream(respiration_signal(WINDOW), window=WINDOW),
            checkpoint=StreamCheckpoint(path),
        )
        with pytest.raises(ConfigurationError, match="different stream"):
            PoolScheduler(config="cpu_vwr2a", workers=2).run(
                stream, StreamCheckpoint(path))

    def test_energy_setting_is_part_of_the_fingerprint(self, tmp_path):
        # Resuming an energy-modeled run with energy off would mix
        # windows with and without energy_uj — refused up front.
        path = tmp_path / "energy.ckpt"
        short = WindowStream(respiration_signal(WINDOW), window=WINDOW)
        StreamScheduler(config="cpu_vwr2a", energy_model=True).run(
            short, checkpoint=StreamCheckpoint(path))
        with pytest.raises(ConfigurationError, match="energy"):
            StreamScheduler(config="cpu_vwr2a", energy_model=None).run(
                short, checkpoint=StreamCheckpoint(path))
        # The True sentinel and a default_model() instance are the same
        # setting: pool- and single-written checkpoints interchange.
        PoolScheduler(config="cpu_vwr2a", workers=2, energy_model=True) \
            .run(short, StreamCheckpoint(path))

    def test_checkpoint_cadence_and_clear(self, tmp_path):
        path = tmp_path / "cadence.ckpt"
        checkpoint = StreamCheckpoint(path, every=3)
        state = CheckpointState(fingerprint={"version": 1, "n_windows": 9})
        assert checkpoint.load() is None
        assert not checkpoint.mark(state)
        assert not checkpoint.mark(state)
        assert not path.exists()
        assert checkpoint.mark(state)  # third mark flushes
        assert path.exists()
        checkpoint.clear()
        assert not path.exists()
        with pytest.raises(ConfigurationError):
            StreamCheckpoint(path, every=0)


class TestMergeArithmetic:
    def _report(self, indices):
        report = StreamReport(
            config="c", engine="auto", window=4, hop=4,
            double_buffered=True,
        )
        for index in indices:
            report.add_window(WindowResult(
                index=index, start=4 * index, app=None, cycles=10 + index,
                events={"column.cycle": index}, launches=(),
                staging_in_cycles=1, staging_out_cycles=1,
            ))
        return report

    def test_add_window_keeps_index_order(self):
        report = self._report([3, 0, 2, 1])
        assert [w.index for w in report.windows] == [0, 1, 2, 3]
        with pytest.raises(ConfigurationError, match="already"):
            report.add_window(report.windows[0])

    def test_merge_interleaves_and_sums(self):
        left = self._report([0, 2])
        left.store_stats = {"stores": 2}
        left.wall_seconds = 1.0
        right = self._report([1, 3])
        right.store_stats = {"stores": 3, "dedup_hits": 1}
        right.wall_seconds = 0.5
        left.merge(right)
        assert [w.index for w in left.windows] == [0, 1, 2, 3]
        assert left.store_stats == {"stores": 5, "dedup_hits": 1}
        assert left.wall_seconds == 1.5
        assert left.total_events == {"column.cycle": 6}

    def test_merge_rejects_mismatched_streams(self):
        left = self._report([0])
        other = self._report([1])
        other.window = 8
        with pytest.raises(ConfigurationError, match="window"):
            left.merge(other)


# -- worker construction and pickling ---------------------------------------


@dataclass(frozen=True)
class TinyPipeline:
    """A kernel-free pipeline cheap enough for spawn-method tests."""

    config: str = "tiny"

    def __call__(self, runner, samples):
        runner.soc.run_cpu(10)
        return sum(samples)


class BareReferenceFactory:
    """A runner factory with no ``engine`` attribute (probe path)."""

    def __call__(self):
        return KernelRunner(engine="reference")


class ExplodingTrace(list):
    """A lazy-trace stand-in whose slicing fails past window 1."""

    def __getitem__(self, key):
        if isinstance(key, slice) and (key.start or 0) >= 16:
            raise OSError("simulated I/O error reading the trace")
        return super().__getitem__(key)


class TestWorkerPlumbing:
    def test_spawn_start_method_round_trips(self):
        # Spawn pickles the spec end-to-end (fork only inherits), so this
        # proves the worker-side construction path is import-clean.
        stream = WindowStream(list(range(16)), window=8)
        report = PoolScheduler(
            pipeline=TinyPipeline(), workers=2, start_method="spawn",
        ).run(stream)
        assert [w.app for w in report.windows] == [28, 92]
        assert report.engine == "auto"

    def test_feeder_failure_raises_instead_of_hanging(self):
        # Lazy traces can fail mid-stream (I/O); the feeder must still
        # deliver worker sentinels and surface the error as a
        # PoolWorkerError rather than deadlocking the run.
        stream = WindowStream(ExplodingTrace(range(32)), window=8)
        with pytest.raises(PoolWorkerError, match="trace slicing"):
            PoolScheduler(pipeline=TinyPipeline(), workers=2).run(stream)

    def test_unpicklable_pipeline_is_rejected_early(self):
        stream = WindowStream(list(range(8)), window=4)
        unpicklable = lambda runner, samples: 0  # noqa: E731
        with pytest.raises(ConfigurationError, match="does not pickle"):
            PoolScheduler(pipeline=unpicklable, workers=2).run(stream)

    def test_runner_factory_builds_engine_specific_runners(self):
        factory = RunnerFactory(engine="reference")
        runner = pickle.loads(pickle.dumps(factory))()
        assert runner.soc.vwr2a.engine == "reference"
        assert PoolScheduler(
            pipeline=TinyPipeline(), runner_factory=factory,
        ).engine == "reference"

    def test_bare_factory_engine_is_probed_not_guessed(self):
        # A custom factory without an `engine` attribute: the pool
        # builds one throwaway runner to read the real engine, so
        # fingerprints and reports never record a wrong "auto".
        pool = PoolScheduler(
            pipeline=TinyPipeline(), runner_factory=BareReferenceFactory(),
        )
        assert pool.engine == "reference"

    def test_float_traces_fingerprint_distinctly(self):
        from repro.serve.checkpoint import stream_fingerprint

        ints = WindowStream([1, 2, 3, 4], window=2)
        floats = WindowStream([1.4, 2.4, 3.4, 4.4], window=2)
        assert stream_fingerprint(ints, "c", "auto", True)["trace_sha256"] \
            != stream_fingerprint(floats, "c", "auto", True)["trace_sha256"]

    def test_custom_pipeline_parameters_pin_the_fingerprint(self):
        # Same non-dataclass pipeline class, different instance
        # attributes: must describe differently, or a resume could mix
        # windows computed under two parameterizations.
        from repro.serve.checkpoint import describe

        class Custom:
            def __init__(self, threshold):
                self.threshold = threshold

        assert describe(Custom(1)) != describe(Custom(2))
        assert describe(Custom(1)) == describe(Custom(1))

    def test_closure_parameters_pin_the_fingerprint(self):
        from repro.serve.checkpoint import describe

        def make(threshold):
            def pipeline(runner, samples):
                return threshold
            return pipeline

        assert describe(make(5)) != describe(make(7))
        assert describe(make(5)) == describe(make(5))

    def test_host_interrupt_flushes_the_checkpoint(self, tmp_path):
        # Ctrl-C on the host between cadence flushes must not discard
        # completed windows: the pool flushes before propagating.
        class InterruptingCheckpoint(StreamCheckpoint):
            def mark(self, state):
                if state.n_done >= 2:
                    raise KeyboardInterrupt
                return super().mark(state)

        path = tmp_path / "interrupt.ckpt"
        stream = WindowStream(list(range(64)), window=8)
        with pytest.raises(KeyboardInterrupt):
            PoolScheduler(pipeline=TinyPipeline(), workers=2).run(
                stream, InterruptingCheckpoint(path, every=100))
        state = StreamCheckpoint(path).load()
        assert state.n_done >= 2  # completed windows survived the ^C
        resumed = PoolScheduler(pipeline=TinyPipeline(), workers=2).run(
            stream, StreamCheckpoint(path, every=100))
        assert [w.app for w in resumed.windows] == [
            sum(range(i * 8, (i + 1) * 8)) for i in range(8)
        ]

    def test_warm_hook_leaves_no_trace(self):
        runner = KernelRunner()
        log = []
        runner.launch_log = log
        pipeline = window_pipeline("cpu_vwr2a")
        samples = respiration_signal(WINDOW)
        runner.warm(pipeline, samples)
        assert log == []  # launches invisible to per-window reports
        assert runner._sram_next == 0  # staging rewound
        stats = runner.soc.vwr2a.config_mem.stats
        assert stats.encode_misses > 0  # caches are populated
        # A warmed worker serves the window with zero new encodes.
        before = stats.snapshot()
        StreamScheduler(pipeline=pipeline, runner=runner).run(
            WindowStream(samples, window=WINDOW))
        assert stats.since(before)["encode_misses"] == 0

    def test_warmed_pool_is_still_bit_identical(self, stream, single):
        warmed = PoolScheduler(
            config="cpu_vwr2a", workers=2, energy_model=True, warm=True,
        ).run(stream)
        assert_windows_bit_identical(single, warmed)


class TestPooledSweep:
    def test_pooled_sweep_matches_shared_runner_sweep(self, trace):
        cases = [
            SweepCase(name="paper", config="cpu_vwr2a"),
            SweepCase(name="short_fir", config="cpu_vwr2a",
                      params=AppParams(fir_taps=7)),
        ]
        two_windows = trace[:2 * WINDOW]
        shared = ParameterSweep(cases=cases).run(two_windows)
        pooled = ParameterSweep(cases=cases, workers=2).run(two_windows)
        assert pooled.cases == shared.cases
        for name in pooled.cases:
            assert_windows_bit_identical(shared[name], pooled[name])
            assert pooled[name].total_energy_uj \
                == shared[name].total_energy_uj

    def test_sweep_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep(cases=["cpu"], workers=0)

    def test_sweep_rejects_shared_runner_with_workers(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            ParameterSweep(
                cases=["cpu", "cpu_vwr2a"], runner=KernelRunner(),
                workers=2,
            )
