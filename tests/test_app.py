"""Application-level integration tests (Table 5 pipeline)."""

import pytest

from repro.app import (
    WINDOW,
    high_workload_config,
    low_workload_config,
    respiration_signal,
    run_application,
)
from repro.kernels.runner import KernelRunner


@pytest.fixture(scope="module")
def signal():
    return respiration_signal(WINDOW)


@pytest.fixture(scope="module")
def results(signal):
    return {
        config: run_application(signal, config, KernelRunner())
        for config in ("cpu", "cpu_fft_accel", "cpu_vwr2a")
    }


def test_signal_generator_properties():
    sig = respiration_signal(1024)
    assert len(sig) == 1024
    assert all(-32768 <= v <= 32767 for v in sig)
    assert max(sig) > 5000 and min(sig) < -5000
    # Deterministic for a fixed seed.
    assert sig == respiration_signal(1024)


def test_workload_configs_differ():
    fast = respiration_signal(WINDOW, high_workload_config())
    slow = respiration_signal(WINDOW, low_workload_config())
    assert fast != slow


def test_all_configs_agree_on_label(results):
    labels = {r.label for r in results.values()}
    assert len(labels) == 1


def test_features_approximately_agree(results):
    cpu = results["cpu"].features
    vwr2a = results["cpu_vwr2a"].features
    assert len(cpu) == len(vwr2a) == 11
    # Time features within a couple of samples; breath count exact.
    for a, b in zip(cpu[:6], vwr2a[:6]):
        assert abs(a - b) <= 4
    assert cpu[10] == vwr2a[10]
    # Band powers within 20% (different fixed-point paths).
    for a, b in zip(cpu[6:9], vwr2a[6:9]):
        assert b == pytest.approx(a, rel=0.2, abs=64)


def test_cpu_cycles_match_paper_rows(results):
    steps = results["cpu"].steps
    assert steps["preprocessing"].cycles == pytest.approx(49760, rel=0.02)
    assert steps["delineation"].cycles == pytest.approx(46268, rel=0.02)
    assert steps["features"].cycles == pytest.approx(70639, rel=0.02)
    assert results["cpu"].total_cycles == pytest.approx(166667, rel=0.02)


def test_accelerator_only_helps_features(results):
    cpu = results["cpu"]
    accel = results["cpu_fft_accel"]
    assert accel.steps["preprocessing"].cycles == \
        cpu.steps["preprocessing"].cycles
    assert accel.steps["delineation"].cycles == \
        cpu.steps["delineation"].cycles
    assert accel.steps["features"].cycles < cpu.steps["features"].cycles
    savings = 1 - accel.total_cycles / cpu.total_cycles
    assert 0.03 < savings < 0.25  # paper: 9.8%


def test_vwr2a_transforms_the_application(results):
    cpu = results["cpu"]
    vwr2a = results["cpu_vwr2a"]
    for step in ("preprocessing", "delineation", "features"):
        assert vwr2a.steps[step].cycles < cpu.steps[step].cycles / 3
    savings = 1 - vwr2a.total_cycles / cpu.total_cycles
    assert savings > 0.78  # paper: 90.9%


def test_vwr2a_cpu_mostly_sleeps(results):
    vwr2a = results["cpu_vwr2a"]
    total_active = sum(s.cpu_active for s in vwr2a.steps.values())
    total = vwr2a.total_cycles
    assert total_active < 0.45 * total


def test_rejects_bad_inputs(signal):
    with pytest.raises(Exception):
        run_application(signal[:100], "cpu")
    with pytest.raises(Exception):
        run_application(signal, "gpu")


def test_multi_window_runner_reuse(signal):
    """Long-running serving: one runner processes many windows.

    ``run_application`` rewinds the SRAM bump allocator between windows
    (``KernelRunner.reset_sram``); without it the staging area overflows
    after a handful of windows.
    """
    runner = KernelRunner()
    labels = [run_application(signal, "cpu_vwr2a", runner).label]
    watermark = runner._sram_next
    for _ in range(3):
        labels.append(run_application(signal, "cpu_vwr2a", runner).label)
        # The allocator was rewound at each window's start, so the
        # high-water mark stays at one window's staging footprint.
        assert runner._sram_next == watermark
    assert len(set(labels)) == 1


def test_reset_sram_rewinds_allocator():
    runner = KernelRunner()
    base = runner.sram_alloc(128)
    assert base == 0
    assert runner.sram_alloc(64) == 128
    runner.reset_sram()
    assert runner.sram_alloc(16) == 0
