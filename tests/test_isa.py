"""ISA tests: instruction constructors, bundles, binary encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import DEFAULT_PARAMS
from repro.isa import (
    Bundle,
    ColumnProgram,
    KernelConfig,
    LCUCmp,
    LCUInstr,
    LCUOp,
    LSUInstr,
    LSUOp,
    MXCUInstr,
    MXCUOp,
    NO_SRF,
    Operand,
    RCDstKind,
    RCInstr,
    RCOp,
    RCSrcKind,
    ShuffleMode,
    Vwr,
    decode_bundle,
    decode_lcu,
    decode_lsu,
    decode_mxcu,
    decode_rc,
    encode_bundle,
    encode_lcu,
    encode_lsu,
    encode_mxcu,
    encode_rc,
    make_bundle,
)
from repro.isa.fields import Dest, dst_srf, imm, srf
from repro.isa.lcu import blt, exit_, jump, seti
from repro.isa.lsu import ld_vwr, set_srf, shuf
from repro.isa.rc import rc


def test_operand_helpers():
    assert srf(3).reads_srf and srf(3).index == 3
    assert imm(-5).index == -5
    assert Operand(RCSrcKind.VWR_A).vwr() is Vwr.A
    assert dst_srf(2).writes_srf


def test_rc_instr_operands():
    i = rc(RCOp.SADD, dst_srf(1), srf(2), imm(3))
    assert len(i.operands()) == 2
    assert rc(RCOp.MOV, dst_srf(0), srf(1)).operands() == (srf(1),)
    assert RCInstr().operands() == ()


def test_lsu_vwrs_touched():
    assert ld_vwr(Vwr.B, 0).vwrs_touched() == (Vwr.B,)
    assert set(shuf(ShuffleMode.BITREV_LO).vwrs_touched()) == {
        Vwr.A, Vwr.B, Vwr.C
    }
    assert LSUInstr().vwrs_touched() == ()


def test_lsu_srf_usage():
    assert ld_vwr(Vwr.A, 0).uses_srf
    assert set_srf(1, 42).uses_srf
    assert not shuf(ShuffleMode.EVEN_PRUNE).uses_srf


def test_lcu_branch_flags():
    assert blt(0, 5, 3).is_branch
    assert not seti(0, 1).is_branch
    assert blt(0, ("srf", 2), 0).uses_srf
    assert not blt(0, ("reg", 1), 0).uses_srf


def test_make_bundle_padding_and_overflow():
    b = make_bundle(rcs=[rc(RCOp.SADD, dst_srf(0))])
    assert len(b.rcs) == 4 and b.rcs[1].is_nop
    with pytest.raises(ValueError):
        make_bundle(rcs=[RCInstr()] * 5, n_rcs=4)


def test_bundle_is_nop():
    assert Bundle().is_nop
    assert not make_bundle(lcu=exit_()).is_nop


def test_program_validation():
    p = ColumnProgram(bundles=[make_bundle(lcu=exit_())])
    p.validate(DEFAULT_PARAMS)
    too_long = ColumnProgram(
        bundles=[Bundle()] * (DEFAULT_PARAMS.program_words + 1)
    )
    with pytest.raises(ValueError):
        too_long.validate(DEFAULT_PARAMS)
    bad_target = ColumnProgram(
        bundles=[make_bundle(lcu=jump(9)), make_bundle(lcu=exit_())]
    )
    with pytest.raises(ValueError):
        bad_target.validate(DEFAULT_PARAMS)


def test_kernel_config_load_cycles():
    p = ColumnProgram(
        bundles=[make_bundle(lcu=exit_())], srf_init={0: 1, 1: 2}
    )
    cfg = KernelConfig(name="k", columns={0: p})
    cfg.validate(DEFAULT_PARAMS)
    assert cfg.load_cycles(DEFAULT_PARAMS) == 3


# -- encoding round-trips -----------------------------------------------------

rc_ops = st.sampled_from(list(RCOp))
src_kinds = st.sampled_from(list(RCSrcKind))
dst_kinds = st.sampled_from(list(RCDstKind))


@st.composite
def rc_instrs(draw):
    def operand():
        kind = draw(src_kinds)
        if kind is RCSrcKind.SRF:
            return Operand(kind, draw(st.integers(0, 7)))
        if kind is RCSrcKind.IMM:
            return Operand(kind, draw(st.integers(-(2**16), 2**16 - 1)))
        return Operand(kind)

    dkind = draw(dst_kinds)
    dest = Dest(dkind, draw(st.integers(0, 7)) if dkind is RCDstKind.SRF
                else 0)
    return RCInstr(op=draw(rc_ops), dst=dest, a=operand(), b=operand())


@given(rc_instrs())
def test_rc_encode_roundtrip(instr):
    assert decode_rc(encode_rc(instr)) == instr


@st.composite
def lsu_instrs(draw):
    return LSUInstr(
        op=draw(st.sampled_from(list(LSUOp))),
        vwr=draw(st.sampled_from(list(Vwr))),
        addr=draw(st.integers(0, 7)),
        inc=draw(st.integers(-128, 127)),
        data=draw(st.integers(0, 7)),
        value=draw(st.integers(-(2**31), 2**31 - 1)),
        mode=draw(st.sampled_from(list(ShuffleMode))),
    )


@given(lsu_instrs())
def test_lsu_encode_roundtrip(instr):
    assert decode_lsu(encode_lsu(instr)) == instr


@st.composite
def mxcu_instrs(draw):
    return MXCUInstr(
        op=draw(st.sampled_from(list(MXCUOp))),
        k=draw(st.integers(0, 31)),
        inc=draw(st.integers(-32, 31)),
        and_mask=draw(st.integers(0, 31)),
        xor_mask=draw(st.integers(0, 31)),
        srf_and=draw(st.sampled_from([NO_SRF] + list(range(8)))),
    )


@given(mxcu_instrs())
def test_mxcu_encode_roundtrip(instr):
    assert decode_mxcu(encode_mxcu(instr)) == instr


@st.composite
def lcu_instrs(draw):
    return LCUInstr(
        op=draw(st.sampled_from(list(LCUOp))),
        rd=draw(st.integers(0, 3)),
        imm=draw(st.integers(-(2**16), 2**16 - 1)),
        cmp_kind=draw(st.sampled_from(list(LCUCmp))),
        cmp=draw(st.integers(-(2**16), 2**16 - 1)),
        target=draw(st.integers(0, 63)),
    )


@given(lcu_instrs())
def test_lcu_encode_roundtrip(instr):
    assert decode_lcu(encode_lcu(instr)) == instr


@given(lcu_instrs(), lsu_instrs(), mxcu_instrs(),
       st.lists(rc_instrs(), min_size=4, max_size=4))
def test_bundle_encode_roundtrip(lcu, lsu, mxcu, rcs):
    bundle = Bundle(lcu=lcu, lsu=lsu, mxcu=mxcu, rcs=tuple(rcs))
    assert decode_bundle(encode_bundle(bundle)) == bundle


def test_encode_rejects_out_of_range():
    with pytest.raises(ValueError):
        encode_rc(rc(RCOp.SADD, dst_srf(0), imm(2**20)))
