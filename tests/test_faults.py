"""Fault injection, the self-healing pool, and chaos campaigns.

The robustness contract of docs/robustness.md, proved end to end:

* **determinism of chaos** — a :class:`FaultPlan` is a seeded, frozen
  schedule, so every differential below is exactly reproducible;
* **recoverable faults are invisible** — SPM upsets, brownouts, chunk
  corruption and even SIGKILLed workers leave a final
  :class:`StreamReport` bit-identical (cycles, events, energy, features,
  labels) to an uninjected sequential run, because every spoiled attempt
  is discarded, healed and retried;
* **unrecoverable faults are explicit** — windows that exhaust the
  retry ladder are quarantined into ``failed_windows`` with their fault
  pedigree instead of aborting the stream, and a checkpoint resume
  gives them amnesty;
* **the pool never leaks** — dead and hung workers are reaped and
  respawned, and no zombie children survive a chaotic run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass

import pytest

from repro.app import WINDOW, respiration_signal
from repro.core.errors import BrownoutError, ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    CampaignReport,
    FaultCampaign,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    is_fault_failure,
    served_identical,
)
from repro.isa.rc import RCOp
from repro.kernels import KernelRunner, elementwise_kernel
from repro.serve import (
    CheckpointState,
    PoolScheduler,
    PoolWorkerError,
    StreamCheckpoint,
    StreamScheduler,
    WindowStream,
    describe_exit,
)
from repro.serve.stream import Window, corrupt_chunk, truncate_chunk
from repro.soc.power_domains import Domain

# -- cheap picklable pipelines for chaos plumbing -----------------------------

CHAOS_WINDOW = 128


@dataclass(frozen=True)
class VaddPipeline:
    """One staged SADD kernel per window — cheap, but launches a kernel
    (SPM faults only land at kernel-launch boundaries)."""

    config: str = "chaos_vadd"

    def __call__(self, runner, samples):
        line_words = runner.soc.params.line_words
        runner.stage_in(samples, 0)
        runner.stage_in(samples, line_words)
        config = elementwise_kernel(
            runner.soc.params, RCOp.SADD, len(samples),
            a_line=0, b_line=1, c_line=2, name="chaos_vadd",
        )
        runner.execute(config)
        out, _ = runner.stage_out(2 * line_words, len(samples))
        return tuple(out)


@dataclass(frozen=True)
class GrumpyVadd(VaddPipeline):
    """VaddPipeline that raises a genuine bug on one window's samples."""

    fail_first_sample: int = -1

    def __call__(self, runner, samples):
        if samples and samples[0] == self.fail_first_sample:
            raise RuntimeError("genuine pipeline bug, not a fault")
        return super().__call__(runner, samples)


@pytest.fixture(scope="module")
def chaos_stream():
    trace = respiration_signal(4 * CHAOS_WINDOW)
    return WindowStream(trace, window=CHAOS_WINDOW)


@pytest.fixture(scope="module")
def chaos_baseline(chaos_stream):
    return StreamScheduler(pipeline=VaddPipeline()).run(chaos_stream)


# -- the fault plan -----------------------------------------------------------


class TestFaultPlan:
    def test_generation_is_seed_deterministic(self):
        rates = {"spm_bitflip": 0.5, "brownout": 0.3, "worker_kill": 0.2}
        a = FaultPlan.generate(7, 16, rates)
        b = FaultPlan.generate(7, 16, rates)
        assert a == b
        assert a.specs == b.specs
        assert FaultPlan.generate(8, 16, rates) != a

    def test_plans_pickle_unchanged(self):
        plan = FaultPlan.generate(3, 8, {k: 0.4 for k in FAULT_KINDS})
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_counts_and_window_lookup(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_bitflip", window=1),
            FaultSpec(kind="spm_bitflip", window=1, addr=9),
            FaultSpec(kind="worker_kill", window=2),
        ))
        assert plan.counts() == {"spm_bitflip": 2, "worker_kill": 1}
        assert len(plan.for_window(1)) == 2
        assert plan.for_window(0) == ()
        assert plan.has_process_faults
        assert len(plan) == 3
        assert "spm_bitflip: 2" in repr(plan)

    def test_persist_and_compiled_only_gate_fires(self):
        transient = FaultSpec(kind="spm_bitflip", window=0, persist=1)
        assert transient.fires(0, "auto")
        assert not transient.fires(1, "auto")
        hard = FaultSpec(kind="spm_stuck", window=0, persist=99)
        assert hard.fires(5, "reference")
        compiled = FaultSpec(
            kind="spm_stuck", window=0, persist=99, compiled_only=True
        )
        assert compiled.fires(5, "auto")
        assert not compiled.fires(5, "reference")

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray", window=0)
        with pytest.raises(ConfigurationError, match="persist"):
            FaultSpec(kind="brownout", window=0, persist=0)
        with pytest.raises(ConfigurationError, match="window"):
            FaultSpec(kind="brownout", window=-1)
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan.generate(0, 4, {"cosmic_ray": 1.0})

    def test_injector_rejects_non_plans(self):
        with pytest.raises(ConfigurationError, match="FaultPlan"):
            FaultInjector([FaultSpec(kind="brownout", window=0)])


# -- injection primitives -----------------------------------------------------


class TestSpmInjection:
    def test_bitflip_and_heal_round_trip(self):
        spm = KernelRunner().soc.vwr2a.spm
        spm.poke_words(40, [0b1010])
        original = spm.inject_bitflip(40, 2)
        assert original == 0b1010
        assert spm.peek_words(40, 1) == [0b1110]
        spm.heal_word(40, original)
        assert spm.peek_words(40, 1) == [0b1010]

    def test_stuck_and_heal_round_trip(self):
        spm = KernelRunner().soc.vwr2a.spm
        spm.poke_words(7, [12345])
        original = spm.inject_stuck(7, -1)
        assert original == 12345
        assert spm.peek_words(7, 1) == [-1]
        spm.heal_word(7, original)
        assert spm.peek_words(7, 1) == [12345]

    def test_bitflip_validates_bit(self):
        from repro.core.errors import AddressError

        spm = KernelRunner().soc.vwr2a.spm
        with pytest.raises(AddressError):
            spm.inject_bitflip(0, 32)


class TestBrownout:
    def test_fuse_trips_and_powers_the_domain_off(self):
        power = KernelRunner().soc.power
        power.power_on(Domain.ACCELERATORS)
        power.schedule_brownout(Domain.ACCELERATORS, 100)
        assert power.brownout_armed
        power.advance(60)
        with pytest.raises(BrownoutError) as excinfo:
            power.advance(60)
        assert excinfo.value.domain == Domain.ACCELERATORS
        assert excinfo.value.cycles_in == 40
        assert not power.is_powered(Domain.ACCELERATORS)
        assert not power.brownout_armed

    def test_cancel_disarms_the_fuse(self):
        power = KernelRunner().soc.power
        power.power_on(Domain.ACCELERATORS)
        power.schedule_brownout(Domain.ACCELERATORS, 100)
        power.cancel_brownout()
        power.advance(10_000)  # no trip
        assert power.is_powered(Domain.ACCELERATORS)

    def test_fuse_validates_cycles(self):
        power = KernelRunner().soc.power
        with pytest.raises(ConfigurationError):
            power.schedule_brownout(Domain.ACCELERATORS, 0)

    def test_brownout_error_is_a_fault_failure(self):
        err = BrownoutError(Domain.ACCELERATORS, 123)
        assert is_fault_failure(err, ())
        assert not is_fault_failure(RuntimeError("bug"), ())
        assert is_fault_failure(RuntimeError("bug"), ("spm_bitflip",))


class TestChunkFaults:
    def test_corrupt_flips_one_sample_and_wraps(self):
        window = Window(index=0, start=0, samples=(1, 2, 3, 4))
        bad = corrupt_chunk(window, 2, 0b100)
        assert bad.samples == (1, 2, 7, 4)
        assert bad.index == 0 and bad.start == 0
        wrapped = corrupt_chunk(window, 6, 1)
        assert wrapped.samples == (1, 2, 2, 4)

    def test_truncate_shortens_without_padding(self):
        window = Window(index=1, start=4, samples=(1, 2, 3, 4))
        short = truncate_chunk(window, 2)
        assert short.samples == (1, 2)
        assert truncate_chunk(window, 99).samples == window.samples

    def test_pipeline_detects_truncated_chunks(self):
        from repro.app.mbiotracker import window_pipeline

        pipeline = window_pipeline("cpu_vwr2a")
        with pytest.raises(ConfigurationError, match="window"):
            pipeline(KernelRunner(), (0,) * (WINDOW - 3))


# -- sequential resilience ----------------------------------------------------


class TestSequentialResilience:
    def test_transient_faults_retry_to_bit_identity(
            self, chaos_stream, chaos_baseline):
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_bitflip", window=0, addr=3, bit=5),
            FaultSpec(kind="spm_stuck", window=1, addr=10, value=-1),
            FaultSpec(kind="brownout", window=2, after_cycles=50),
            FaultSpec(kind="chunk_corrupt", window=3, offset=7, xor_mask=2),
        ))
        report = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=2,
        ).run(chaos_stream)
        assert report.n_failed == 0
        # Engines included: recovery never needed the reference tier.
        assert report.identical_to(chaos_baseline) is None
        assert report.resilience["retries"] == 4
        for kind in ("spm_bitflip", "spm_stuck", "brownout",
                     "chunk_corrupt"):
            assert report.resilience[f"fault:{kind}"] == 1

    def test_truncated_chunks_are_detected_and_retried(self, chaos_stream,
                                                       chaos_baseline):
        # VaddPipeline happily serves a short window, so the *detection
        # model* (a fired fault spoils the attempt) is what saves it.
        plan = FaultPlan(specs=(
            FaultSpec(kind="chunk_truncate", window=1, keep=40),
        ))
        report = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=1,
        ).run(chaos_stream)
        assert report.identical_to(chaos_baseline) is None
        assert report.resilience["fault:chunk_truncate"] == 1

    def test_persistent_fault_quarantines_instead_of_aborting(
            self, chaos_stream, chaos_baseline):
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_stuck", window=1, addr=4, value=0,
                      persist=99),
        ))
        report = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=1,
        ).run(chaos_stream)
        assert report.n_windows == 3 and report.n_failed == 1
        failed = report.failed_windows[0]
        assert failed.index == 1
        assert failed.start == CHAOS_WINDOW
        assert failed.attempts == 3  # 2 primary + 1 reference
        assert failed.kinds == ("spm_stuck",)
        assert report.resilience["quarantined"] == 1
        assert "quarantined" in report.summary()
        # The served remainder is still bit-identical to the baseline.
        assert served_identical(report, chaos_baseline) is None

    def test_quarantined_windows_get_amnesty_on_resume(
            self, chaos_stream, chaos_baseline, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(kind="brownout", window=2, after_cycles=10,
                      persist=99),
        ))
        path = tmp_path / "quarantine.ckpt"
        first = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=0,
        ).run(chaos_stream, checkpoint=StreamCheckpoint(path, every=1))
        assert first.n_failed == 1
        state = StreamCheckpoint(path).load()
        assert state.complete and state.n_failed == 1
        # Resume without the hostile plan: the quarantine is released
        # and the stream completes bit-identically.
        resumed = StreamScheduler(pipeline=VaddPipeline()).run(
            chaos_stream, checkpoint=StreamCheckpoint(path, every=1))
        assert resumed.n_failed == 0
        assert resumed.identical_to(chaos_baseline) is None
        assert resumed.resilience["requarantine_released"] == 1

    def test_compiled_only_fault_recovers_on_the_reference_tier(
            self, chaos_stream, chaos_baseline):
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_bitflip", window=0, addr=2, bit=1,
                      persist=99, compiled_only=True),
        ))
        report = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=1,
        ).run(chaos_stream)
        assert report.n_failed == 0
        assert report.resilience["reference_recoveries"] == 1
        # Bit-identical in everything simulated; the engine decisions of
        # the recovered window honestly differ.
        assert report.identical_to(chaos_baseline, engines=False) is None
        assert "engine decisions differ" in \
            report.identical_to(chaos_baseline)

    def test_reference_fallback_can_be_disabled(self, chaos_stream):
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_bitflip", window=0, addr=2, bit=1,
                      persist=99, compiled_only=True),
        ))
        report = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=1,
            reference_fallback=False,
        ).run(chaos_stream)
        assert report.n_failed == 1
        assert report.failed_windows[0].attempts == 2

    def test_genuine_bugs_still_propagate_under_an_armed_plan(
            self, chaos_stream):
        trace = list(chaos_stream.trace)
        pipeline = GrumpyVadd(fail_first_sample=trace[CHAOS_WINDOW])
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_bitflip", window=0, addr=1, bit=0),
        ))
        with pytest.raises(RuntimeError, match="genuine pipeline bug"):
            StreamScheduler(
                pipeline=pipeline, fault_plan=plan, max_retries=3,
            ).run(chaos_stream)

    def test_process_faults_are_skipped_not_executed(self, chaos_stream,
                                                     chaos_baseline):
        # A sequential scheduler must never kill or hang the host.
        plan = FaultPlan(specs=(
            FaultSpec(kind="worker_kill", window=0),
            FaultSpec(kind="worker_hang", window=1),
        ))
        scheduler = StreamScheduler(
            pipeline=VaddPipeline(), fault_plan=plan, max_retries=1,
        )
        report = scheduler.run(chaos_stream)
        assert report.identical_to(chaos_baseline) is None
        assert scheduler._injector.skipped == 2

    def test_scheduler_validates_retry_budget(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            StreamScheduler(pipeline=VaddPipeline(), max_retries=-1)


# -- the self-healing pool ----------------------------------------------------


class TestPoolChaos:
    def test_kill_and_corrupt_mid_stream_is_bit_identical(self):
        """The acceptance differential: a seeded plan SIGKILLs a worker
        and flips SPM bits mid-stream; the supervised pool respawns,
        retries, and the merged report — cycles, events, energy,
        features, labels — is bit-identical to an uninjected
        sequential run of the full application."""
        trace = respiration_signal(3 * WINDOW)
        stream = WindowStream(trace, window=WINDOW)
        baseline = StreamScheduler(
            config="cpu_vwr2a", energy_model=True).run(stream)
        plan = FaultPlan.generate(
            2021, stream.n_windows,
            {"worker_kill": 0.4, "spm_bitflip": 0.8},
        )
        counts = plan.counts()
        assert counts["worker_kill"] >= 1 and counts["spm_bitflip"] >= 1
        report = PoolScheduler(
            config="cpu_vwr2a", workers=2, energy_model=True,
            fault_plan=plan, max_retries=2, respawn_limit=4,
        ).run(stream)
        assert report.n_failed == 0
        assert report.identical_to(baseline) is None
        assert report.labels == baseline.labels
        assert report.total_energy_uj == baseline.total_energy_uj
        assert report.resilience["worker_deaths"] >= 1
        assert report.resilience["respawns"] \
            == report.resilience["worker_deaths"]
        assert report.resilience["fault:spm_bitflip"] >= 1
        assert multiprocessing.active_children() == []

    def test_sigkill_death_is_diagnosed_when_unrespawnable(
            self, chaos_stream):
        plan = FaultPlan(specs=(FaultSpec(kind="worker_kill", window=0),))
        with pytest.raises(PoolWorkerError) as excinfo:
            PoolScheduler(
                pipeline=VaddPipeline(), workers=1, fault_plan=plan,
                max_retries=1, respawn_limit=0,
            ).run(chaos_stream)
        assert "SIGKILL" in str(excinfo.value)
        assert "respawn budget 0 exhausted" in str(excinfo.value)
        assert excinfo.value.window_index == 0
        assert multiprocessing.active_children() == []

    def test_hung_worker_is_killed_and_respawned(self, chaos_stream,
                                                 chaos_baseline):
        plan = FaultPlan(specs=(FaultSpec(kind="worker_hang", window=1),))
        report = PoolScheduler(
            pipeline=VaddPipeline(), workers=2, fault_plan=plan,
            max_retries=1, respawn_limit=2, heartbeat_timeout=1.0,
        ).run(chaos_stream)
        assert report.n_failed == 0
        assert report.identical_to(chaos_baseline) is None
        assert report.resilience["worker_hangs"] == 1
        assert report.resilience["respawns"] == 1
        assert multiprocessing.active_children() == []

    def test_pool_quarantines_and_checkpoint_resume_completes(
            self, chaos_stream, chaos_baseline, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(kind="spm_stuck", window=2, addr=6, value=-1,
                      persist=99),
        ))
        path = tmp_path / "pool-quarantine.ckpt"
        report = PoolScheduler(
            pipeline=VaddPipeline(), workers=2, fault_plan=plan,
            max_retries=1,
        ).run(chaos_stream, StreamCheckpoint(path, every=1))
        assert report.n_failed == 1
        assert report.failed_windows[0].index == 2
        assert served_identical(report, chaos_baseline) is None
        resumed = PoolScheduler(pipeline=VaddPipeline(), workers=2).run(
            chaos_stream, StreamCheckpoint(path, every=1))
        assert resumed.n_failed == 0
        assert resumed.identical_to(chaos_baseline) is None

    def test_hang_plan_requires_heartbeat(self):
        plan = FaultPlan(specs=(FaultSpec(kind="worker_hang", window=0),))
        with pytest.raises(ConfigurationError, match="heartbeat_timeout"):
            PoolScheduler(pipeline=VaddPipeline(), fault_plan=plan)

    def test_pool_validates_resilience_knobs(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            PoolScheduler(max_retries=-1)
        with pytest.raises(ConfigurationError, match="respawn_limit"):
            PoolScheduler(respawn_limit=-1)
        with pytest.raises(ConfigurationError, match="heartbeat_timeout"):
            PoolScheduler(heartbeat_timeout=0)

    def test_describe_exit_names_signals(self):
        assert "SIGKILL" in describe_exit(-9)
        assert "SIGKILL" in describe_exit(137)
        assert "SIGTERM" in describe_exit(-15)
        assert "exit code 0" in describe_exit(0)
        assert "code 3" in describe_exit(3)
        assert describe_exit(None) == "still running"


# -- checkpoint durability ----------------------------------------------------


class TestCheckpointHardening:
    def _state(self):
        from repro.serve.checkpoint import FORMAT_VERSION

        return CheckpointState(
            fingerprint={"version": FORMAT_VERSION, "n_windows": 1}
        )

    def test_save_fsyncs_before_the_atomic_replace(
            self, tmp_path, monkeypatch):
        synced = []
        real = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real(fd))[1]
        )
        StreamCheckpoint(tmp_path / "durable.ckpt").save(self._state())
        assert synced  # the temp file (and best-effort the directory)

    def test_corrupted_checkpoint_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"\x80\x05 this is not a checkpoint")
        with pytest.warns(RuntimeWarning, match="corrupted or truncated"):
            assert StreamCheckpoint(path).load() is None

    def test_truncated_checkpoint_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        checkpoint = StreamCheckpoint(path)
        checkpoint.save(self._state())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.warns(RuntimeWarning, match="corrupted or truncated"):
            assert checkpoint.load() is None

    def test_wrong_type_still_raises(self, tmp_path):
        path = tmp_path / "wrong.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(ConfigurationError, match="not a stream"):
            StreamCheckpoint(path).load()

    def test_stream_recovers_over_a_corrupted_checkpoint(self, tmp_path):
        path = tmp_path / "recover.ckpt"
        path.write_bytes(b"bit rot")
        stream = WindowStream(
            respiration_signal(2 * CHAOS_WINDOW), window=CHAOS_WINDOW
        )
        with pytest.warns(RuntimeWarning, match="starting the stream"):
            report = StreamScheduler(pipeline=VaddPipeline()).run(
                stream, checkpoint=StreamCheckpoint(path, every=1))
        assert report.n_windows == 2
        assert StreamCheckpoint(path).load().complete


# -- campaigns ----------------------------------------------------------------


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign_report(self) -> CampaignReport:
        trace = respiration_signal(3 * CHAOS_WINDOW)
        campaign = FaultCampaign(
            kinds=("spm_bitflip", "chunk_corrupt", "worker_kill"),
            rates=(0.6,), persists=(1,), seed=5, workers=2,
            max_retries=2, pipeline=VaddPipeline(),
        )
        return campaign.run(trace, window=CHAOS_WINDOW)

    def test_recoverable_cells_honor_the_contract(self, campaign_report):
        assert campaign_report.ok
        assert len(campaign_report.cells) == 3
        for cell in campaign_report.cells:
            assert cell.recoverable
            assert cell.n_quarantined == 0
            assert cell.n_served == campaign_report.n_windows
            assert cell.bit_identical and cell.mismatch is None
        assert multiprocessing.active_children() == []

    def test_report_serializes_and_summarizes(self, campaign_report):
        import json

        payload = json.loads(campaign_report.to_json())
        assert payload["ok"] is True
        assert len(payload["cells"]) == 3
        assert all(cell["ok"] for cell in payload["cells"])
        summary = campaign_report.summary()
        assert "all cells honored the resilience contract" in summary
        assert "worker_kill" in summary

    def test_unrecoverable_cell_accounts_every_window(self):
        trace = respiration_signal(2 * CHAOS_WINDOW)
        campaign = FaultCampaign(
            kinds=("spm_stuck",), rates=(0.9,), persists=(99,), seed=2,
            workers=1, max_retries=1, pipeline=VaddPipeline(),
        )
        report = campaign.run(trace, window=CHAOS_WINDOW)
        (cell,) = report.cells
        assert not cell.recoverable
        assert cell.n_faults >= 1
        assert cell.n_served + cell.n_quarantined == cell.n_windows
        assert cell.n_quarantined >= 1
        assert cell.bit_identical  # the served remainder still matches
        assert cell.ok and report.ok

    def test_recoverability_ladder_arithmetic(self):
        campaign = FaultCampaign(
            max_retries=2, reference_fallback=True,
            pipeline=VaddPipeline(),
        )
        assert campaign.recoverable(1)
        assert campaign.recoverable(2)
        assert campaign.recoverable(3)  # the reference attempt is clean
        assert not campaign.recoverable(4)
        bare = FaultCampaign(
            max_retries=2, reference_fallback=False,
            pipeline=VaddPipeline(),
        )
        assert not bare.recoverable(3)
        hardened = FaultCampaign(
            max_retries=0, compiled_only=True, pipeline=VaddPipeline(),
        )
        assert hardened.recoverable(99)  # reference dodges compiled_only

    def test_campaign_validates_its_grid(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultCampaign(kinds=("cosmic_ray",))
        with pytest.raises(ConfigurationError, match="at least one"):
            FaultCampaign(rates=())
        with pytest.raises(ConfigurationError, match="no windows"):
            FaultCampaign(pipeline=VaddPipeline()).run(
                [0] * 4, window=CHAOS_WINDOW)
