"""Isolation tests for the static event-delta layer and the scheduler.

``bundle_event_delta`` is asserted against the reference interpreter one
bundle class at a time (every unit, operand kind and op family), instead
of only through whole-kernel differentials; ``delta_matrix`` is asserted
against the per-entry dictionary fold; and the virtual-time scheduler's
column-interleaving order (least virtual time first, horizon = smallest
other running column) is pinned down explicitly.
"""

from __future__ import annotations

import pytest

from repro.arch import ArchParams
from repro.asm.builder import ProgramBuilder
from repro.core.cgra import Vwr2a
from repro.core.column import Column
from repro.core.events import EventCounters
from repro.core.spm import Scratchpad
from repro.engine import executor
from repro.engine.deltas import bundle_event_delta, delta_matrix
from repro.isa.bundle import make_bundle
from repro.isa.fields import (
    DST_R0,
    DST_R1,
    DST_VWR_B,
    DST_VWR_C,
    R0,
    R1,
    RCB,
    RCT,
    VWR_A,
    ShuffleMode,
    Vwr,
    dst_srf,
    imm,
    srf,
)
from repro.isa.lcu import LCU_NOP, addi, beq, blt, exit_, jump, ldsrf, seti
from repro.isa.lsu import ld_srf, ld_vwr, set_srf, shuf, st_srf, st_vwr
from repro.isa.mxcu import MXCUInstr, MXCUOp, inck, setk
from repro.isa.program import ColumnProgram, KernelConfig
from repro.isa.rc import RCOp, rc

PARAMS = ArchParams()


def _reference_delta(bundle) -> dict:
    """Events one reference execution of ``bundle`` logs, in isolation."""
    events = EventCounters()
    spm = Scratchpad(PARAMS.spm_lines, PARAMS.line_words, events)
    column = Column(0, PARAMS, spm, events)
    program = ColumnProgram(
        bundles=[bundle],
        # Valid SPM addresses for the LSU classes under test.
        srf_init={0: 3, 1: 17, 2: 2, 3: -7},
    )
    column.load(program)
    before = events.snapshot()
    column.step()
    return events.diff(before)


#: One bundle per delta class: (label, bundle).
BUNDLE_CASES = [
    ("empty", make_bundle()),
    ("rc_alu_classes", make_bundle(rcs=[
        rc(RCOp.SADD, DST_R0, VWR_A, imm(3)),
        rc(RCOp.SMUL, DST_R1, imm(-2), imm(9)),
        rc(RCOp.SRA, DST_VWR_B, VWR_A, imm(2)),
        rc(RCOp.LXOR, DST_VWR_C, VWR_A, imm(0xF)),
    ], n_rcs=4)),
    ("rc_reg_and_neighbour_reads", make_bundle(rcs=[
        rc(RCOp.SADD, DST_R0, R0, R1),
        rc(RCOp.MOV, DST_R1, RCT),
        rc(RCOp.SMAX, DST_VWR_C, RCB, R0),
        rc(RCOp.LNOT, dst_srf(5), R1),
    ], n_rcs=4)),
    ("rc_srf_broadcast_dedup", make_bundle(rcs=[
        # One broadcast SRF read per distinct entry, not per consumer.
        rc(RCOp.SADD, DST_R0, srf(3), imm(1)),
        rc(RCOp.SSUB, DST_R0, srf(3), imm(2)),
        rc(RCOp.SMIN, DST_R1, srf(2), srf(3)),
        rc(RCOp.FXPMUL16, DST_VWR_B, srf(2), imm(7)),
    ], n_rcs=4)),
    ("mxcu_setk", make_bundle(mxcu=setk(5))),
    ("mxcu_upd_imm", make_bundle(mxcu=inck(2, and_mask=7, xor_mask=1))),
    ("mxcu_upd_srf_mask", make_bundle(
        mxcu=MXCUInstr(op=MXCUOp.UPD, inc=1, srf_and=2),
    )),
    ("lsu_ld_vwr_inc", make_bundle(lsu=ld_vwr(Vwr.A, 0, inc=1))),
    ("lsu_st_vwr_noinc", make_bundle(lsu=st_vwr(Vwr.B, 0))),
    ("lsu_ld_srf", make_bundle(lsu=ld_srf(1, 4, inc=2))),
    ("lsu_st_srf", make_bundle(lsu=st_srf(1, 2, inc=1))),
    ("lsu_set_srf", make_bundle(lsu=set_srf(6, 1234))),
    ("lsu_shuffle", make_bundle(lsu=shuf(ShuffleMode.BITREV_LO))),
    ("lcu_seti", make_bundle(lcu=seti(0, 11))),
    ("lcu_addi", make_bundle(lcu=addi(0, -3))),
    ("lcu_ldsrf", make_bundle(lcu=ldsrf(1, 2))),
    ("lcu_jump", make_bundle(lcu=jump(0))),
    ("lcu_branch_imm", make_bundle(lcu=blt(0, 99, 0))),
    ("lcu_branch_reg", make_bundle(lcu=beq(0, ("reg", 1), 0))),
    ("lcu_branch_sr", make_bundle(lcu=blt(0, ("srf", 2), 0))),
    ("lcu_exit", make_bundle(lcu=exit_())),
]


class TestBundleDeltas:
    @pytest.mark.parametrize(
        "bundle", [case[1] for case in BUNDLE_CASES],
        ids=[case[0] for case in BUNDLE_CASES],
    )
    def test_static_delta_matches_reference_step(self, bundle):
        assert bundle_event_delta(bundle, PARAMS) \
            == _reference_delta(bundle)


class TestDeltaMatrix:
    def test_matrix_fold_equals_dictionary_fold(self):
        deltas = [
            tuple(sorted(bundle_event_delta(case[1], PARAMS).items()))
            for case in BUNDLE_CASES
        ]
        events, rows = delta_matrix(deltas)
        counts = list(range(1, len(deltas) + 1))

        walked = {}
        for delta, count in zip(deltas, counts):
            for name, n in delta:
                walked[name] = walked.get(name, 0) + n * count
        folded = {}
        for position, name in enumerate(events):
            total = sum(
                row[position] * count for row, count in zip(rows, counts)
            )
            if total:
                folded[name] = total
        assert folded == {k: v for k, v in walked.items() if v}

    def test_matrix_shape(self):
        events, rows = delta_matrix([(("a.b", 2),), (("c.d", 1),)])
        assert events == ("a.b", "c.d")
        assert rows == [[2, 0], [0, 1]]


def _two_column_config(params) -> KernelConfig:
    """Asymmetric two-column kernel (different virtual-time profiles)."""
    columns = {}
    for col, bound in enumerate((5, 17)):
        b = ProgramBuilder(n_rcs=params.rcs_per_column)
        b.emit(lcu=seti(0, 0))
        b.label("loop")
        b.emit(rcs=[rc(RCOp.SADD, DST_R0, R0, imm(col + 1))]
               * params.rcs_per_column, lcu=addi(0, 1))
        b.emit(lcu=blt(0, bound, "loop"))
        b.emit(lcu=LCU_NOP)
        b.exit()
        columns[col] = b.build()
    return KernelConfig(name="order", columns=columns)


class TestSchedulerInterleavingOrder:
    def test_least_virtual_time_column_advances_first(self, monkeypatch):
        calls = []
        original = executor.BoundColumn.run_until

        def recording(self, name, max_cycles, horizon=None):
            before = self.steps
            alive = original(self, name, max_cycles, horizon)
            calls.append(
                (self.column.index, before, horizon, self.steps, alive)
            )
            return alive

        monkeypatch.setattr(executor.BoundColumn, "run_until", recording)
        sim = Vwr2a(engine="compiled")
        sim.execute(_two_column_config(sim.params))

        assert calls, "multi-column kernel must go through the scheduler"
        # Replay the scheduler's contract: at every pick, the chosen
        # column's virtual time is minimal among running columns, the
        # horizon equals the smallest of the *other* running columns',
        # and the column hands control back just past that horizon.
        steps = {0: 0, 1: 0}
        running = {0, 1}
        for index, before, horizon, after, alive in calls:
            assert index in running
            assert before == steps[index]
            others = [steps[c] for c in running if c != index]
            if others:
                assert before <= min(others)
                assert horizon == min(others)
            else:
                assert horizon is None
            if alive:
                assert after > horizon
            else:
                running.remove(index)
            steps[index] = after

    def test_single_column_bypasses_the_scheduler(self, monkeypatch):
        called = []
        monkeypatch.setattr(
            executor.CompiledEngine, "_interleave",
            staticmethod(
                lambda *args: called.append(args) or 0
            ),
        )
        sim = Vwr2a(engine="compiled")
        b = ProgramBuilder(n_rcs=sim.params.rcs_per_column)
        b.emit(lcu=seti(0, 0))
        b.exit()
        sim.execute(KernelConfig(name="one", columns={0: b.build()}))
        assert called == []
